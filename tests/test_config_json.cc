/**
 * @file
 * Tests for the INI configuration parser and the streaming JSON
 * writer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/config.hh"
#include "util/json.hh"

using namespace cllm;

namespace {

const char *kSample = R"(# experiment description
[experiment]
model = 7b
backend = tdx
batch = 6
beam = 4          ; inline comment
amx = true
price = 0.0088

[machine]
name = emr1
sockets = 1
)";

} // namespace

TEST(Config, ParsesSectionsAndKeys)
{
    const auto r = Config::parse(kSample);
    ASSERT_TRUE(r.ok) << r.error;
    const Config &c = r.config;
    EXPECT_EQ(c.getString("experiment", "model"), "7b");
    EXPECT_EQ(c.getInt("experiment", "batch"), 6);
    EXPECT_EQ(c.getInt("experiment", "beam"), 4); // comment stripped
    EXPECT_TRUE(c.getBool("experiment", "amx"));
    EXPECT_NEAR(c.getDouble("experiment", "price"), 0.0088, 1e-12);
    EXPECT_EQ(c.getString("machine", "name"), "emr1");
}

TEST(Config, SectionAndKeyOrderPreserved)
{
    const auto r = Config::parse(kSample);
    ASSERT_TRUE(r.ok);
    const auto secs = r.config.sections();
    ASSERT_EQ(secs.size(), 2u);
    EXPECT_EQ(secs[0], "experiment");
    EXPECT_EQ(secs[1], "machine");
    const auto keys = r.config.keys("experiment");
    ASSERT_GE(keys.size(), 2u);
    EXPECT_EQ(keys[0], "model");
    EXPECT_EQ(keys[1], "backend");
}

TEST(Config, DefaultsWhenMissing)
{
    const auto r = Config::parse(kSample);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.config.getString("experiment", "nope", "dflt"), "dflt");
    EXPECT_EQ(r.config.getInt("nope", "x", 42), 42);
    EXPECT_FALSE(r.config.has("experiment", "nope"));
}

TEST(Config, LastDuplicateWins)
{
    const auto r = Config::parse("[s]\nk = 1\nk = 2\n");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.config.getInt("s", "k"), 2);
    EXPECT_EQ(r.config.keys("s").size(), 1u);
}

TEST(Config, ErrorsAreReported)
{
    EXPECT_FALSE(Config::parse("[unterminated\n").ok);
    EXPECT_FALSE(Config::parse("[]\n").ok);
    EXPECT_FALSE(Config::parse("no equals here\n").ok);
    EXPECT_FALSE(Config::parse("= value\n").ok);
    EXPECT_FALSE(Config::load("/nonexistent/path.ini").ok);
}

TEST(Config, GlobalSectionSupported)
{
    const auto r = Config::parse("top = 1\n[s]\nk = 2\n");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.config.getInt("", "top"), 1);
}

TEST(ConfigDeath, MalformedNumbersFatal)
{
    const auto r = Config::parse("[s]\nk = 12abc\nb = maybe\n");
    ASSERT_TRUE(r.ok);
    EXPECT_DEATH(r.config.getInt("s", "k"), "trailing junk");
    EXPECT_DEATH(r.config.getBool("s", "b"), "not a boolean");
}

TEST(Json, FlatObject)
{
    std::ostringstream os;
    {
        JsonWriter j(os);
        j.beginObject();
        j.key("name").value("TDX");
        j.key("tput").value(46.63);
        j.key("batch").value(6);
        j.key("amx").value(true);
        j.key("note").null();
        j.endObject();
        EXPECT_TRUE(j.complete());
    }
    EXPECT_EQ(os.str(), "{\"name\":\"TDX\",\"tput\":46.63,"
                        "\"batch\":6,\"amx\":true,\"note\":null}");
}

TEST(Json, NestedArraysAndObjects)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("rows").beginArray();
    j.beginObject().key("x").value(1).endObject();
    j.beginObject().key("x").value(2).endObject();
    j.endArray();
    j.endObject();
    EXPECT_EQ(os.str(), "{\"rows\":[{\"x\":1},{\"x\":2}]}");
}

TEST(Json, EscapesStrings)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("s").value("a\"b\\c\nd\te");
    j.endObject();
    EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharactersEscapedAsUnicode)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray().value(std::string("\x01")).endArray();
    EXPECT_EQ(os.str(), "[\"\\u0001\"]");
}

TEST(Json, BackspaceAndFormFeedUseShortEscapes)
{
    // RFC 8259 defines two-character escapes for \b and \f; emitting
    // \u0008/\u000C would be valid but not byte-stable against other
    // producers.
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray().value(std::string("a\bb\fc")).endArray();
    EXPECT_EQ(os.str(), "[\"a\\bb\\fc\"]");
}

TEST(Json, FlatReaderRoundTripsEscapedKeys)
{
    // Keys exercising every escape class the writer emits: the short
    // escapes, a quote, a backslash, and a \u00XX control character.
    const std::map<std::string, double> original{
        {"plain", 1.5},
        {"quote\"slash\\", 2.0},
        {"short\b\f\n\r\t", -3.25},
        {std::string("ctl\x01\x1f"), 4.0},
    };
    std::ostringstream os;
    {
        JsonWriter j(os);
        j.beginObject();
        for (const auto &[k, v] : original)
            j.key(k).value(v);
        j.endObject();
    }
    const std::map<std::string, double> parsed =
        parseFlatJsonNumbers(os.str());
    EXPECT_EQ(parsed, original);
}

TEST(JsonDeath, FlatReaderRejectsNonAsciiUnicodeEscape)
{
    EXPECT_DEATH(parseFlatJsonNumbers("{\"a\\u2603\": 1}"),
                 "\\\\u escape");
}

TEST(Json, NonFiniteBecomesNull)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray()
        .value(1.0 / 0.0)
        .value(std::nan(""))
        .endArray();
    EXPECT_EQ(os.str(), "[null,null]");
}

TEST(Json, ArrayOfScalars)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray().value(1).value(2.5).value("x").endArray();
    EXPECT_EQ(os.str(), "[1,2.5,\"x\"]");
}

TEST(JsonDeath, MisuseIsCaught)
{
    {
        std::ostringstream os;
        JsonWriter j(os);
        j.beginObject();
        EXPECT_DEATH(j.value(1), "without key");
        j.endObject();
    }
    {
        std::ostringstream os;
        JsonWriter j(os);
        j.beginArray();
        EXPECT_DEATH(j.key("k"), "outside object");
        j.endArray();
    }
    {
        std::ostringstream os;
        JsonWriter j(os);
        EXPECT_DEATH(j.endObject(), "outside object");
    }
}
