/**
 * @file
 * Cloud pricing model for the paper's cost analysis (Section V-D,
 * Figures 12-13): GCP-style separable vCPU/memory spot pricing for
 * CPU machines, instance-hour pricing for confidential GPU VMs, and
 * the $/1M-tokens metric both figures report.
 */

#ifndef CLLM_COST_PRICING_HH
#define CLLM_COST_PRICING_HH

#include <string>

namespace cllm::cost {

/** Separable CPU pricing (per vCPU-hour and per GB-hour). */
struct CpuPricing
{
    std::string name;
    double vcpuHr = 0.0088;   //!< USD per vCPU per hour
    double memGbHr = 0.00118; //!< USD per GB per hour
};

/** GPU instance pricing (GPU + host bundled). */
struct GpuPricing
{
    std::string name;
    double instanceHr = 8.20; //!< USD per hour
};

/** GCP spot prices, us-east1 (C3/N2-class), as used in the paper. */
CpuPricing gcpSpotUsEast1();

/** Cheaper Sapphire-Rapids-based machine type (Section V-D). */
CpuPricing gcpSpotSprUsEast1();

/** Confidential H100 instance (Azure NCCads_H100_v5-class). */
GpuPricing cgpuH100();

/** Non-confidential H100 instance (Azure NCads_H100_v5-class). */
GpuPricing gpuH100();

/** Hourly price of a CPU slice: vCPUs + fixed memory. */
double cpuInstanceHr(const CpuPricing &p, unsigned vcpus,
                     double mem_gb);

/**
 * Cost in USD of generating one million tokens at a throughput.
 *
 * @param tokens_per_s sustained generation throughput
 * @param instance_hr instance price per hour
 */
double costPerMTokens(double tokens_per_s, double instance_hr);

/** Per-hour price converted to per-second (fleet node-second rate). */
double perSecondUsd(double instance_hr);

/**
 * USD charged for keeping one instance up for `seconds` at an hourly
 * price — the fleet simulator's node-second meter, applied to busy,
 * idle, and cold-start provisioning time alike.
 */
double nodeSecondsUsd(double instance_hr, double seconds);

/**
 * USD per 1000 generated tokens given a total bill — the fleet-level
 * figure of merit (Figs. 12-13 normalised to a fleet run).
 */
double costPer1kTokens(std::uint64_t tokens, double total_usd);

} // namespace cllm::cost

#endif // CLLM_COST_PRICING_HH
