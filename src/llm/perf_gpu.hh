/**
 * @file
 * GPU inference timing model for the paper's Section V: H100 (raw)
 * versus confidential H100 (cGPU). The cGPU costs are the encrypted
 * PCIe bounce buffer and extra kernel-launch latency; HBM itself is
 * not encrypted on H100s, so unlike CPU TEEs there is no bandwidth
 * tax on the critical decode path (Insight 10).
 */

#ifndef CLLM_LLM_PERF_GPU_HH
#define CLLM_LLM_PERF_GPU_HH

#include <cstdint>

#include "hw/gpu.hh"
#include "llm/model_config.hh"
#include "llm/perf_cpu.hh"
#include "tee/backend.hh"

namespace cllm::llm {

/** Operational parameters of a GPU run (vLLM-style serving). */
struct GpuRunParams
{
    hw::Dtype dtype = hw::Dtype::Bf16;
    unsigned batch = 1;
    unsigned inLen = 128;
    unsigned outLen = 128;
    bool confidential = false;
    std::uint64_t seed = 42;
};

/** Knobs of the GPU timing model. */
struct GpuPerfConfig
{
    double overlapBeta = 0.10;
    /** Kernel launches per decode step (CUDA-graph amortized). */
    double launchesPerStep = 32.0;
    /** Fraction of peak tensor throughput vLLM achieves. */
    double computeEff = 0.55;
    /** Fraction of HBM stream bandwidth achieved in decode. */
    double memEff = 0.80;
    /** Host<->device payload per token per sequence (ids/logits). */
    double hostBytesPerToken = 64.0;
};

/**
 * GPU timing model.
 */
class GpuPerfModel
{
  public:
    explicit GpuPerfModel(GpuPerfConfig cfg = {});

    /** Simulate a run; model memory must fit (checked). */
    TimingResult run(const hw::GpuSpec &gpu, const ModelConfig &model,
                     const GpuRunParams &params) const;

    const GpuPerfConfig &config() const { return cfg_; }

  private:
    GpuPerfConfig cfg_;
};

} // namespace cllm::llm

#endif // CLLM_LLM_PERF_GPU_HH
