#include "fleet/metrics.hh"

#include "util/json.hh"

namespace cllm::fleet {

void
writeFleetMetrics(JsonWriter &json, const FleetMetrics &m)
{
    json.beginObject();
    json.field("submitted", m.submitted);
    json.field("completed", m.completed);
    json.field("availability", m.availability);
    json.field("makespan_s", m.makespan);
    json.field("output_tokens", m.outputTokens);
    json.field("tokens_per_s", m.tokensPerSecond);
    json.field("ttft_p50_s", m.ttft.p50);
    json.field("ttft_p99_s", m.ttft.p99);
    json.field("tpot_p50_s", m.tpot.p50);
    json.field("tpot_p99_s", m.tpot.p99);
    json.field("slo_attainment", m.sloAttainment);
    json.field("kv_utilization_peak", m.kvUtilizationPeak);
    json.field("mean_batch_occupancy", m.meanBatchOccupancy);
    json.field("peak_batch_occupancy", m.peakBatchOccupancy);
    json.field("kv_preemptions", m.kvPreemptions);
    json.field("kv_swap_outs", m.kvSwapOuts);
    json.field("kv_swap_ins", m.kvSwapIns);
    json.field("kv_swap_s", m.kvSwapSeconds);
    if (m.prefixEnabled) {
        json.field("prefix_hits", m.prefixHits);
        json.field("prefix_misses", m.prefixMisses);
        json.field("prefix_cached_tokens", m.prefixCachedTokens);
        json.field("prefill_tokens_computed",
                   m.prefillTokensComputed);
        json.field("prefix_evictions", m.prefixEvictions);
        json.field("prefix_evicted_blocks", m.prefixEvictedBlocks);
        json.field("prefix_pinned_peak_blocks", m.prefixPinnedPeak);
    }
    if (m.chunkedEnabled) {
        json.field("itl_p50_s", m.itl.p50);
        json.field("itl_p95_s", m.itl.p95);
        json.field("itl_p99_s", m.itl.p99);
        json.field("chunk_slices", m.chunkSlices);
        json.field("chunk_prefill_tokens", m.chunkPrefillTokens);
        json.field("mixed_steps", m.mixedSteps);
        json.field("starvation_kicks", m.starvationKicks);
        json.field("max_step_prefill_tokens", m.maxStepPrefillTokens);
    }
    if (m.specEnabled) {
        json.field("spec_verify_steps", m.specVerifySteps);
        json.field("spec_draft_tokens", m.specDraftTokens);
        json.field("spec_accepted_tokens", m.specAccepted);
        json.field("spec_rejected_tokens", m.specRejected);
        json.field("spec_bonus_tokens", m.specBonus);
        // Per-sequence verify cycles end in a bonus token or a
        // rejection resample; accepted / (bonus + rejected) is the
        // mean accepted draft length per cycle.
        json.field("spec_mean_accepted_len",
                   m.specBonus + m.specRejected
                       ? static_cast<double>(m.specAccepted) /
                             static_cast<double>(m.specBonus +
                                                 m.specRejected)
                       : 0.0);
    }
    json.field("total_cost_usd", m.totalCostUsd);
    json.field("cost_per_1k_tokens_usd", m.costPer1kTokens);
    json.field("peak_nodes", m.peakNodes);
    json.field("mean_live_nodes", m.meanLiveNodes);
    json.field("scale_ups", m.scaleUps);
    json.field("drains", m.drains);
    json.field("backlogged", m.backlogged);
    json.field("retries", m.retries);
    json.field("shed", m.shed);
    json.field("timed_out", m.timedOut);
    json.field("failed", m.failed);
    json.field("restarts", m.restarts);
    json.field("fault_downtime_s", m.faultDowntime);

    json.key("node_timeline");
    json.beginArray();
    for (const auto &[t, count] : m.nodeTimeline) {
        json.beginObject();
        json.field("t_s", t);
        json.field("live_nodes", count);
        json.endObject();
    }
    json.endArray();

    json.key("nodes");
    json.beginArray();
    for (const NodeSummary &n : m.nodes) {
        json.beginObject();
        json.field("id", n.id);
        json.field("name", n.name);
        json.field("template", n.templateIndex);
        json.field("provision_start_s", n.provisionStart);
        json.field("available_at_s", n.availableAt);
        json.field("billed_until_s", n.billedUntil);
        json.field("billed_seconds", n.billedSeconds);
        json.field("cost_usd", n.costUsd);
        json.key("serve");
        serve::writeMetrics(json, n.serve);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace cllm::fleet
