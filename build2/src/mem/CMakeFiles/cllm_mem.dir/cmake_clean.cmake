file(REMOVE_RECURSE
  "CMakeFiles/cllm_mem.dir/cache_sim.cc.o"
  "CMakeFiles/cllm_mem.dir/cache_sim.cc.o.d"
  "CMakeFiles/cllm_mem.dir/epc.cc.o"
  "CMakeFiles/cllm_mem.dir/epc.cc.o.d"
  "CMakeFiles/cllm_mem.dir/kv_paged.cc.o"
  "CMakeFiles/cllm_mem.dir/kv_paged.cc.o.d"
  "CMakeFiles/cllm_mem.dir/mee_tree.cc.o"
  "CMakeFiles/cllm_mem.dir/mee_tree.cc.o.d"
  "CMakeFiles/cllm_mem.dir/numa.cc.o"
  "CMakeFiles/cllm_mem.dir/numa.cc.o.d"
  "CMakeFiles/cllm_mem.dir/phys_mem.cc.o"
  "CMakeFiles/cllm_mem.dir/phys_mem.cc.o.d"
  "CMakeFiles/cllm_mem.dir/tlb.cc.o"
  "CMakeFiles/cllm_mem.dir/tlb.cc.o.d"
  "libcllm_mem.a"
  "libcllm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
