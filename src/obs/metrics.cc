#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/json.hh"
#include "util/logging.hh"

namespace cllm::obs {

// ---------------------------------------------------------------- Counter

unsigned
Counter::shardIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned idx =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
}

std::uint64_t
Counter::total() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.v.load(std::memory_order_relaxed);
    return sum;
}

void
Counter::reset()
{
    for (Shard &s : shards_)
        s.v.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), nb_(buckets),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    if (!(lo > 0.0) || !(hi > lo))
        cllm_panic("Histogram: need 0 < lo < hi, got ", lo, ", ", hi);
    if (buckets == 0)
        cllm_panic("Histogram: zero buckets");
    logLo_ = std::log(lo_);
    invLogStep_ =
        static_cast<double>(nb_) / (std::log(hi_) - logLo_);
    counts_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(nb_ + 2);
    for (unsigned i = 0; i < nb_ + 2; ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

unsigned
Histogram::bucketIndex(double x) const
{
    if (!(x >= lo_)) // covers x < lo, x <= 0, and NaN
        return 0;
    if (x >= hi_)
        return nb_ + 1;
    const double f = (std::log(x) - logLo_) * invLogStep_;
    auto i = static_cast<unsigned>(f);
    // Guard the log/exp round-trip at bucket edges.
    return std::min(i, nb_ - 1) + 1;
}

double
Histogram::bucketEdge(unsigned i) const
{
    if (i == 0)
        return 0.0;
    if (i >= nb_ + 1)
        return hi_;
    return std::exp(logLo_ + static_cast<double>(i - 1) / invLogStep_);
}

void
Histogram::record(double x)
{
    counts_[bucketIndex(x)].fetch_add(1, std::memory_order_relaxed);
    // Exact extremes via CAS; min/max commute, so the stored values
    // are independent of thread interleaving.
    double cur = min_.load(std::memory_order_relaxed);
    while (x < cur &&
           !min_.compare_exchange_weak(cur, x,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (x > cur &&
           !max_.compare_exchange_weak(cur, x,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < nb_ + 2; ++i)
        n += counts_[i].load(std::memory_order_relaxed);
    return n;
}

SampleSummary
Histogram::summary() const
{
    SampleSummary s;
    const std::uint64_t n = count();
    if (n == 0)
        return s;
    s.count = n;
    const double mn = min_.load(std::memory_order_relaxed);
    const double mx = max_.load(std::memory_order_relaxed);
    s.min = mn;
    s.max = mx;

    // Representative value per bucket: exact extremes for the
    // open-ended under/overflow buckets, geometric midpoint inside.
    auto rep = [&](unsigned i) {
        if (i == 0)
            return mn;
        if (i == nb_ + 1)
            return mx;
        return std::sqrt(bucketEdge(i) * bucketEdge(i + 1));
    };

    // Closed-form weighted moments over bucket representatives —
    // O(buckets) regardless of sample count, and a pure function of
    // the (deterministic) integer bucket counts.
    double wsum = 0.0;
    for (unsigned i = 0; i < nb_ + 2; ++i)
        wsum += static_cast<double>(
                    counts_[i].load(std::memory_order_relaxed)) *
                rep(i);
    s.mean = wsum / static_cast<double>(n);
    double wsq = 0.0;
    for (unsigned i = 0; i < nb_ + 2; ++i) {
        const double d = rep(i) - s.mean;
        wsq += static_cast<double>(
                   counts_[i].load(std::memory_order_relaxed)) *
               d * d;
    }
    s.stddev =
        n > 1 ? std::sqrt(wsq / static_cast<double>(n - 1)) : 0.0;

    // Percentile: locate the bucket holding rank p/100 * (n-1) and
    // interpolate linearly between its edges (clamped to the exact
    // extremes), mirroring util::percentile's type-7 rank.
    auto pct = [&](double p) {
        const double rank =
            p / 100.0 * static_cast<double>(n - 1);
        std::uint64_t c0 = 0;
        for (unsigned i = 0; i < nb_ + 2; ++i) {
            const std::uint64_t c =
                counts_[i].load(std::memory_order_relaxed);
            if (c == 0)
                continue;
            if (rank < static_cast<double>(c0 + c)) {
                const double e0 =
                    std::max(bucketEdge(i), mn);
                const double e1 =
                    std::min(bucketEdge(i + 1), mx);
                const double frac =
                    (rank - static_cast<double>(c0)) /
                    static_cast<double>(c);
                return std::clamp(e0 + (e1 - e0) * frac, mn, mx);
            }
            c0 += c;
        }
        return mx;
    };
    s.p50 = pct(50.0);
    s.p95 = pct(95.0);
    s.p99 = pct(99.0);
    return s;
}

void
Histogram::reset()
{
    for (unsigned i = 0; i < nb_ + 2; ++i)
        counts_[i].store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

// --------------------------------------------------------------- Registry

Registry &
Registry::global()
{
    static Registry r;
    return r;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, double lo, double hi,
                    unsigned buckets)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(lo, hi, buckets);
    return *slot;
}

void
Registry::snapshot(JsonWriter &json) const
{
    std::lock_guard<std::mutex> lock(mu_);
    json.beginObject();
    json.key("counters").beginObject();
    for (const auto &[name, c] : counters_)
        json.field(name, c->total());
    json.endObject();
    json.key("gauges").beginObject();
    for (const auto &[name, g] : gauges_)
        json.field(name, g->get());
    json.endObject();
    json.key("histograms").beginObject();
    for (const auto &[name, h] : histograms_) {
        const SampleSummary s = h->summary();
        json.key(name).beginObject();
        json.field("count", s.count);
        json.field("mean", s.mean);
        json.field("p50", s.p50);
        json.field("p95", s.p95);
        json.field("p99", s.p99);
        json.field("min", s.min);
        json.field("max", s.max);
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace cllm::obs
