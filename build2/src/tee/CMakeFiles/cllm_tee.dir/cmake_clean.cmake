file(REMOVE_RECURSE
  "CMakeFiles/cllm_tee.dir/attest.cc.o"
  "CMakeFiles/cllm_tee.dir/attest.cc.o.d"
  "CMakeFiles/cllm_tee.dir/backend.cc.o"
  "CMakeFiles/cllm_tee.dir/backend.cc.o.d"
  "CMakeFiles/cllm_tee.dir/fs_shield.cc.o"
  "CMakeFiles/cllm_tee.dir/fs_shield.cc.o.d"
  "CMakeFiles/cllm_tee.dir/manifest.cc.o"
  "CMakeFiles/cllm_tee.dir/manifest.cc.o.d"
  "CMakeFiles/cllm_tee.dir/session.cc.o"
  "CMakeFiles/cllm_tee.dir/session.cc.o.d"
  "libcllm_tee.a"
  "libcllm_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
