file(REMOVE_RECURSE
  "CMakeFiles/rag_chatbot.dir/rag_chatbot.cpp.o"
  "CMakeFiles/rag_chatbot.dir/rag_chatbot.cpp.o.d"
  "rag_chatbot"
  "rag_chatbot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_chatbot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
