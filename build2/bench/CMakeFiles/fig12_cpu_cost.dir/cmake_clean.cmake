file(REMOVE_RECURSE
  "CMakeFiles/fig12_cpu_cost.dir/fig12_cpu_cost.cpp.o"
  "CMakeFiles/fig12_cpu_cost.dir/fig12_cpu_cost.cpp.o.d"
  "fig12_cpu_cost"
  "fig12_cpu_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpu_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
