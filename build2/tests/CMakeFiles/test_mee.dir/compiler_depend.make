# Empty compiler generated dependencies file for test_mee.
# This may be replaced when dependencies are built.
