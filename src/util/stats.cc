#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace cllm {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> samples, double p)
{
    if (p < 0.0 || p > 100.0)
        cllm_panic("percentile p out of range: ", p);
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
median(std::vector<double> samples)
{
    return percentile(std::move(samples), 50.0);
}

std::vector<double>
zScoreFilter(const std::vector<double> &samples, double z_max,
             std::size_t *removed)
{
    OnlineStats st;
    for (double x : samples)
        st.add(x);
    const double sd = st.stddev();
    std::vector<double> out;
    out.reserve(samples.size());
    if (sd == 0.0) {
        out = samples;
    } else {
        for (double x : samples) {
            if (std::abs(x - st.mean()) / sd <= z_max)
                out.push_back(x);
        }
    }
    if (removed)
        *removed = samples.size() - out.size();
    return out;
}

SampleSummary
summarize(const std::vector<double> &samples, double z_max)
{
    SampleSummary s;
    if (samples.empty())
        return s;
    std::vector<double> kept;
    if (z_max > 0.0) {
        kept = zScoreFilter(samples, z_max, &s.outliers);
    } else {
        kept = samples;
    }
    if (kept.empty())
        kept = samples;
    OnlineStats st;
    for (double x : kept)
        st.add(x);
    s.count = st.count();
    s.mean = st.mean();
    s.stddev = st.stddev();
    s.min = st.min();
    s.max = st.max();
    s.p50 = percentile(kept, 50.0);
    s.p95 = percentile(kept, 95.0);
    s.p99 = percentile(kept, 99.0);
    return s;
}

double
overhead(double value, double baseline)
{
    if (baseline == 0.0)
        cllm_panic("overhead with zero baseline");
    return value / baseline - 1.0;
}

double
overheadPct(double value, double baseline)
{
    return 100.0 * overhead(value, baseline);
}

} // namespace cllm
