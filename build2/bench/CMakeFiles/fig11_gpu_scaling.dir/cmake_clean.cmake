file(REMOVE_RECURSE
  "CMakeFiles/fig11_gpu_scaling.dir/fig11_gpu_scaling.cpp.o"
  "CMakeFiles/fig11_gpu_scaling.dir/fig11_gpu_scaling.cpp.o.d"
  "fig11_gpu_scaling"
  "fig11_gpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
