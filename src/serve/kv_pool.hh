/**
 * @file
 * Compatibility seam: the paged KV block allocator now lives in
 * `mem::PagedKvCache` (`src/mem/kv_paged.hh`) next to the other
 * secure-memory models (EPC, TLB, MEE) whose costs it interacts with.
 * The serving layer keeps its historical names as aliases; behaviour
 * is identical — the reserved-mode engine is bit-for-bit the same
 * simulation it was when the pool lived here.
 */

#ifndef CLLM_SERVE_KV_POOL_HH
#define CLLM_SERVE_KV_POOL_HH

#include "mem/kv_paged.hh"

namespace cllm::serve {

/** Sequence handle. */
using SeqId = mem::KvSeqId;

/** Pool configuration. */
using KvPoolConfig = mem::PagedKvConfig;

/** Reference-counted KV block allocator. */
using KvBlockPool = mem::PagedKvCache;

} // namespace cllm::serve

#endif // CLLM_SERVE_KV_POOL_HH
