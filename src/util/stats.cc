#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace cllm {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> samples, double p)
{
    return percentiles(std::move(samples), {p})[0];
}

std::vector<double>
percentiles(std::vector<double> samples, const std::vector<double> &ps)
{
    for (double p : ps)
        if (p < 0.0 || p > 100.0)
            cllm_panic("percentile p out of range: ", p);
    std::vector<double> out(ps.size(), 0.0);
    if (samples.empty() || ps.empty())
        return out;
    if (samples.size() == 1) {
        std::fill(out.begin(), out.end(), samples[0]);
        return out;
    }
    // Process requested ranks in ascending order: each nth_element
    // call partitions only the suffix past the previously placed
    // rank, and every element it places is an exact order statistic —
    // the same value a full sort would put there.
    std::vector<std::size_t> order(ps.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&ps](std::size_t a, std::size_t b) {
                  return ps[a] != ps[b] ? ps[a] < ps[b] : a < b;
              });
    const std::size_t n = samples.size();
    std::ptrdiff_t last = -1; // highest index already exact
    for (std::size_t oi : order) {
        const double rank =
            ps[oi] / 100.0 * static_cast<double>(n - 1);
        const std::size_t lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, n - 1);
        const double frac = rank - static_cast<double>(lo);
        if (static_cast<std::ptrdiff_t>(lo) > last) {
            std::nth_element(
                samples.begin() + (last + 1),
                samples.begin() + static_cast<std::ptrdiff_t>(lo),
                samples.end());
            last = static_cast<std::ptrdiff_t>(lo);
        }
        // The interpolation partner one rank up is the minimum of
        // the unsorted tail left behind by the partition.
        const double v_hi =
            hi > lo ? *std::min_element(
                          samples.begin() +
                              static_cast<std::ptrdiff_t>(lo) + 1,
                          samples.end())
                    : samples[lo];
        out[oi] = samples[lo] * (1.0 - frac) + v_hi * frac;
    }
    return out;
}

double
median(std::vector<double> samples)
{
    return percentile(std::move(samples), 50.0);
}

std::vector<double>
zScoreFilter(const std::vector<double> &samples, double z_max,
             std::size_t *removed)
{
    OnlineStats st;
    for (double x : samples)
        st.add(x);
    const double sd = st.stddev();
    std::vector<double> out;
    out.reserve(samples.size());
    if (sd == 0.0) {
        out = samples;
    } else {
        for (double x : samples) {
            if (std::abs(x - st.mean()) / sd <= z_max)
                out.push_back(x);
        }
    }
    if (removed)
        *removed = samples.size() - out.size();
    return out;
}

SampleSummary
summarize(const std::vector<double> &samples, double z_max)
{
    SampleSummary s;
    if (samples.empty())
        return s;
    std::vector<double> kept;
    if (z_max > 0.0) {
        kept = zScoreFilter(samples, z_max, &s.outliers);
    } else {
        kept = samples;
    }
    if (kept.empty())
        kept = samples;
    OnlineStats st;
    for (double x : kept)
        st.add(x);
    s.count = st.count();
    s.mean = st.mean();
    s.stddev = st.stddev();
    s.min = st.min();
    s.max = st.max();
    const std::vector<double> pct =
        percentiles(std::move(kept), {50.0, 95.0, 99.0});
    s.p50 = pct[0];
    s.p95 = pct[1];
    s.p99 = pct[2];
    return s;
}

double
overhead(double value, double baseline)
{
    if (baseline == 0.0)
        cllm_panic("overhead with zero baseline");
    return value / baseline - 1.0;
}

double
overheadPct(double value, double baseline)
{
    return 100.0 * overhead(value, baseline);
}

} // namespace cllm
