/**
 * @file
 * Confidential LLM serving simulator — an extension of the paper's
 * steady-state measurements to online serving: Poisson request
 * arrivals, static or continuous batching, and user-facing SLO
 * metrics (time-to-first-token, time-per-output-token), priced per
 * step by the CPU/GPU timing models under any TEE backend. This turns
 * Insight 11 ("CPU TEEs are pragmatic for small batches") into a
 * capacity question a deployment can actually answer.
 */

#ifndef CLLM_SERVE_SERVING_HH
#define CLLM_SERVE_SERVING_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hh"
#include "fault/schedule.hh"
#include "hw/cpu.hh"
#include "mem/epc.hh"
#include "hw/gpu.hh"
#include "llm/model_config.hh"
#include "llm/perf_cpu.hh"
#include "llm/perf_gpu.hh"
#include "tee/backend.hh"
#include "tee/session.hh"
#include "serve/kv_pool.hh"
#include "util/stats.hh"

namespace cllm::obs {
class Tracer;
}

namespace cllm::serve {

/** One inference request moving through the server. */
struct Request
{
    unsigned id = 0;
    double arrival = 0.0;      //!< seconds since epoch
    unsigned inLen = 0;
    unsigned outLen = 0;

    /** Tenant owning the request (prefix-cache sharing scope). */
    std::uint32_t tenant = 0;

    /**
     * Prompt token IDs, used only by prefix caching. Empty means "no
     * tokens known" and the request always prefills from scratch;
     * non-empty must have exactly inLen entries.
     */
    std::vector<std::int32_t> promptTokens;

    // Filled by the simulation.
    double firstToken = -1.0;  //!< completion time of the first token
    double finish = -1.0;
};

/**
 * Arrival process shaping the request trace. Poisson is the paper's
 * open-loop default; Deterministic spaces arrivals exactly 1/rate
 * apart (a pessimal-jitter-free baseline); BurstyOnOff modulates a
 * Poisson process with alternating exponential on/off phases (an
 * MMPP-2), the workload that makes autoscaling non-trivial.
 */
enum class ArrivalProcess
{
    Poisson,
    Deterministic,
    BurstyOnOff,
};

/** Printable arrival-process name. */
const char *arrivalProcessName(ArrivalProcess p);

/** Open-loop workload description. */
struct WorkloadConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    double arrivalRate = 2.0;      //!< requests per second (mean)
    unsigned numRequests = 200;
    unsigned meanInLen = 512;
    unsigned meanOutLen = 128;
    double lengthSigma = 0.4;      //!< lognormal length spread
    std::uint64_t seed = 7;

    // BurstyOnOff knobs (ignored by the other processes): the on
    // phase arrives at burstRateFactor * arrivalRate, the off phase
    // at idleRateFactor * arrivalRate, with exponential phase
    // lengths of the given means. The trace starts in an on phase.
    double burstRateFactor = 4.0;
    double idleRateFactor = 0.25;
    double meanOnSec = 20.0;
    double meanOffSec = 40.0;
};

/**
 * Draw a reproducible request trace. The Poisson path consumes the
 * seed's RNG stream exactly as it always has (draw-for-draw), so
 * existing seeded traces are stable across the arrival-process seam.
 */
std::vector<Request> generateWorkload(const WorkloadConfig &cfg);

/**
 * Shared-system-prompt annotation for a generated trace: the RAG /
 * chat-serving shape where most requests open with one of a few long
 * tenant-wide system prompts. Assigns each request a tenant and a
 * prompt token sequence whose leading `prefixLen` tokens are drawn
 * from one of `promptsPerTenant` per-tenant prompts (with probability
 * `sharedFraction`; the rest get fully unique prompts). Tokens are
 * derived from split seeds keyed by request id, so annotation never
 * disturbs the trace's arrival/length RNG streams.
 */
struct SharedPrefixMix
{
    unsigned tenants = 4;
    unsigned promptsPerTenant = 2;
    unsigned prefixLen = 256;      //!< tokens of shared prefix
    double sharedFraction = 0.85;  //!< requests opening with one
    std::uint64_t seed = 17;
};

/** Annotate a trace in place with tenants and prompt tokens. */
void applySharedPrefixMix(std::vector<Request> &trace,
                          const SharedPrefixMix &mix);

/** Batching policies. */
enum class BatchPolicy
{
    Static,     //!< form a batch, run it to completion, repeat
    Continuous, //!< admit new requests at step granularity (vLLM-like)
};

/** Printable policy name. */
const char *batchPolicyName(BatchPolicy p);

/**
 * KV allocation discipline for a bounded pool.
 *
 * Reserved is the historical behaviour: admission reserves a
 * request's full inLen+outLen worth of blocks, so decode can never
 * exhaust the pool — simple, deadlock-free, and wasteful (the
 * reservation pins blocks the request will not touch for most of its
 * lifetime, capping the achievable batch).
 *
 * Paged is the vLLM-style discipline: admission allocates only the
 * prompt's blocks (plus a configurable free-block watermark) and
 * sequences grow one block at a time during decode; exhaustion is
 * resolved by deterministically preempting the most recently admitted
 * sequences (swap-to-EPC or recompute). Strictly higher concurrency
 * from the same enclave memory, at the price of preemption work —
 * exactly the paging/batching interplay the paper measures.
 */
enum class KvMode
{
    Reserved,
    Paged,
};

/** Printable KV-mode name. */
const char *kvModeName(KvMode m);

/** Parse "reserved"/"paged" (fatal on anything else). */
KvMode parseKvMode(const std::string &name);

/** How a paged engine resolves KV exhaustion. */
enum class KvPreemptPolicy
{
    /**
     * Drop the victim's KV and re-prefill prompt + generated tokens
     * on resume (vLLM's recomputation mode). Costs step-model prefill
     * time, so the TEE backend's compute tax is charged naturally.
     */
    Recompute,

    /**
     * Page the victim's KV out of the secure region and back in on
     * resume, priced by `mem::EpcCostModel::swapSeconds` over the
     * sequence's KV bytes — the EWB/ELDU traffic an SGX enclave (or
     * the encryption sweep a TD) would pay.
     */
    SwapToEpc,
};

/** Printable preemption-policy name. */
const char *kvPreemptPolicyName(KvPreemptPolicy p);

/** Paged-mode tuning; only read when `ServerConfig::kvMode` is
 *  Paged. */
struct PagedKvPolicy
{
    KvPreemptPolicy preempt = KvPreemptPolicy::Recompute;

    /**
     * Admission watermark: keep at least this many blocks free after
     * admitting a prompt, as growth headroom for the running batch.
     * 0 admits down to the last block (maximum batch, maximum
     * preemption churn).
     */
    std::uint64_t minFreeBlocks = 0;

    /**
     * KV bytes per token, for pricing SwapToEpc traffic (e.g.
     * `model.kvBytesPerToken(dtype)`). Required > 0 by SwapToEpc.
     */
    double kvBytesPerToken = 0.0;

    /** EPC boundary-crossing cost model for swap pricing. */
    mem::EpcCostModel epcCost{};
};

/**
 * Cross-request KV prefix sharing scope. Off is the historical
 * behaviour (and the byte-identity baseline). PerTenant — the default
 * once caching is on — only ever shares cached KV between requests
 * with the same tenant id: inside a TEE, cached KV is plaintext to
 * every request the enclave serves, so cross-tenant sharing is an
 * explicit isolation decision, not a free optimisation (a prefix-hit
 * timing channel can leak whether another tenant asked the same
 * prefix). Global opts into fleet-wide sharing for single-trust-domain
 * deployments and is the upper bound on the hit rate.
 */
enum class PrefixMode
{
    Off,
    PerTenant,
    Global,
};

/** Printable prefix-mode name. */
const char *prefixModeName(PrefixMode m);

/** Parse "off"/"per_tenant"/"global" (fatal on anything else). */
PrefixMode parsePrefixMode(const std::string &name);

/** Prefix-cache tuning; only read when `prefixMode` is not Off. */
struct PrefixCachePolicy
{
    /**
     * Cap on blocks the cache may pin (0 = unbounded, i.e. bounded
     * only by the pool and by eviction pressure from admissions).
     */
    std::uint64_t maxBlocks = 0;
};

/**
 * Chunked-prefill scheduling mode. Off is the historical behaviour
 * (one monolithic prefill step per admission, byte-identical to a
 * build without the feature). The other two modes split each prompt's
 * prefill into `chunkTokens`-sized slices and co-schedule them with
 * decode steps under a per-iteration token budget — the Sarathi/vLLM
 * discipline that bounds the per-step TEE working set so one long
 * prompt can no longer blow past the EPC and stall every decoding
 * sequence's inter-token latency. The modes differ only in who claims
 * budget first when it is scarce.
 */
enum class ChunkMode
{
    Off,
    DecodePriority,  //!< decode claims the budget, prefill gets rest
    PrefillPriority, //!< prefill slices claim first, decode rides
};

/** Printable chunk-mode name. */
const char *chunkModeName(ChunkMode m);

/** Parse "off"/"decode"/"prefill" (fatal on anything else). */
ChunkMode parseChunkMode(const std::string &name);

/** Chunked-prefill tuning; only read when `mode` is not Off. */
struct ChunkedPrefillPolicy
{
    ChunkMode mode = ChunkMode::Off;

    /** Max prompt tokens one slice may prefill. Must be > 0. */
    unsigned chunkTokens = 256;

    /**
     * Per-iteration token budget shared by decode (one token per
     * decoding sequence) and prefill slices. 0 derives
     * chunkTokens + maxBatch, which always leaves room for one full
     * slice beside a full decode batch. Must be >= chunkTokens when
     * set, or a step could never fit a slice.
     */
    unsigned stepTokenBudget = 0;

    /**
     * Starvation guard: a prefilling sequence that makes no progress
     * for this many consecutive iterations gets a forced slice
     * regardless of the budget, so every admitted request finishes
     * prefill in a bounded number of iterations. Must be > 0.
     */
    unsigned starvationIters = 8;
};

/**
 * Speculative decoding: a cheap draft model proposes `draftTokens`
 * tokens per cycle and the target model scores them all in ONE fused
 * verify step. The verify step streams the weights once and pays the
 * per-step fixed costs — SGX/TDX MEE+transition tax, CC-mode kernel
 * launch and bounce-buffer overhead — once for k+1 scored positions,
 * which is exactly the per-step TEE tax the paper measures; that is
 * what speculation amortizes. Disabled (the default) leaves every
 * output byte-identical to a build without the feature.
 *
 * Acceptance is a deterministic per-sequence model: draft token j of
 * request r is accepted iff a uniform draw keyed by
 * splitSeed(splitSeed(seed, r.id), position) falls below acceptProb,
 * so accepted-length streams are reproducible at any thread count and
 * across preemption/recompute (the draw depends only on the request
 * id and the absolute output position, never on sim time).
 */
struct SpecDecodePolicy
{
    bool enabled = false;

    /** Draft tokens proposed per verify cycle (k). Must be > 0. */
    unsigned draftTokens = 4;

    /**
     * Cost of one draft-model decode step as a fraction of the target
     * model's. Must lie in (0, 1): a draft as expensive as the target
     * can never pay for itself.
     */
    double draftCostRatio = 0.15;

    /** Probability each draft token is accepted; in [0, 1]. */
    double acceptProb = 0.7;

    /** Root seed of the per-sequence acceptance streams. */
    std::uint64_t seed = 29;
};

/**
 * How the server responds to faults and overload. Every knob defaults
 * to "off", so a default-constructed policy leaves the simulation
 * byte-identical to a server without one.
 */
struct ResiliencePolicy
{
    /**
     * Per-request deadline in seconds, measured from the original
     * arrival across every retry (0 disables). Queued requests past
     * the deadline are rejected at admission; running requests are
     * aborted after the step that overruns it.
     */
    double requestTimeout = 0.0;

    /** Retry budget for attestation failures and enclave restarts. */
    unsigned maxRetries = 2;

    /** First retry backoff in seconds; grows by backoffMultiplier. */
    double retryBackoff = 0.05;
    double backoffMultiplier = 2.0;

    /**
     * Shed (reject without retry) new admissions while KV-pool
     * occupancy is at or above shedThreshold.
     */
    bool shedOnKvPressure = false;
    double shedThreshold = 0.95;

    /**
     * Graceful degradation: while any fault window is active, cap the
     * batch at this size instead of maxBatch (0 disables).
     */
    unsigned degradedMaxBatch = 0;
};

/** Server configuration. */
struct ServerConfig
{
    BatchPolicy policy = BatchPolicy::Continuous;
    unsigned maxBatch = 32;
    double ttftSlo = 2.0;   //!< seconds to first token
    double tpotSlo = 0.200; //!< seconds per output token (paper's bar)

    /**
     * KV capacity in paged blocks (0 = unbounded). Inside a TEE the
     * pool is the encrypted enclave/TD memory the operator sized.
     * `kvMode` picks the allocation discipline: Reserved pins a
     * request's full inLen+outLen worth of blocks at admission (the
     * historical, deadlock-free default), Paged admits by free-block
     * headroom and preempts on exhaustion.
     */
    std::uint64_t kvBlocks = 0;
    unsigned kvBlockTokens = 16;
    KvMode kvMode = KvMode::Reserved;
    PagedKvPolicy paged{};

    /**
     * Automatic prefix caching (radix-tree KV reuse over the paged
     * pool). Requires `kvMode == Paged`; Off leaves every output
     * byte-identical to a build without the feature.
     */
    PrefixMode prefixMode = PrefixMode::Off;
    PrefixCachePolicy prefix{};

    /**
     * Chunked prefill + mixed prefill/decode batching. Requires
     * continuous batching; Off leaves every output byte-identical to
     * a build without the feature.
     */
    ChunkedPrefillPolicy chunkedPrefill{};

    /**
     * Speculative decoding (draft + fused verify steps). Requires
     * continuous batching; off leaves every output byte-identical to
     * a build without the feature.
     */
    SpecDecodePolicy specDecode{};

    /** Fault/overload response; defaults are all off. */
    ResiliencePolicy resilience{};

    /**
     * Faults to inject (empty = fault-free). Requires continuous
     * batching: a static-batch server cannot react at step
     * granularity.
     */
    fault::FaultSchedule faults{};

    /** Downtime charged per enclave restart. */
    tee::ReprovisionCostModel reprovision{};

    /** Model bytes re-decrypted into secure memory per restart. */
    std::uint64_t weightBytes = 0;

    /**
     * Optional span tracer for the request lifecycle (null = off).
     * Purely observational: the engine never reads anything back
     * from it, so a traced run and an untraced run produce
     * bit-identical metrics. `traceLane` is the tid the events land
     * on (a fleet gives every node its own lane).
     */
    obs::Tracer *tracer = nullptr;
    std::uint32_t traceLane = 0;
};

/**
 * Resilience counters threaded through a run (shared between the
 * Server facade and the incremental ContinuousEngine).
 */
struct ServeTally
{
    std::size_t retries = 0;
    std::size_t shed = 0;
    std::size_t timedOut = 0;
    std::size_t failed = 0;
    std::size_t restarts = 0;
    std::size_t attestRejections = 0;
    double faultDowntime = 0.0;

    // Paged-KV scheduling (all zero in reserved mode).
    std::size_t kvPreemptions = 0; //!< sequences evicted mid-decode
    std::size_t kvSwapOuts = 0;    //!< preemptions that swapped to EPC
    std::size_t kvSwapIns = 0;     //!< resumes paid as swap-in
    double kvSwapSeconds = 0.0;    //!< total EPC boundary traffic time

    // Prefix caching (only meaningful when prefixEnabled; the JSON
    // emitters gate on the flag so off-mode output is byte-stable).
    bool prefixEnabled = false;
    std::size_t prefixHits = 0;    //!< admissions reusing cached KV
    std::size_t prefixMisses = 0;  //!< admissions finding no prefix
    std::uint64_t prefixCachedTokens = 0;  //!< prefill tokens skipped
    std::uint64_t prefillTokensComputed = 0; //!< prefill tokens paid
    std::size_t prefixEvictions = 0;         //!< leaf evictions
    std::uint64_t prefixEvictedBlocks = 0;
    std::uint64_t prefixInsertedBlocks = 0;
    std::uint64_t prefixPinnedPeak = 0;      //!< peak pinned blocks

    // Chunked prefill (counters are only nonzero when chunking is on;
    // maxStepPrefillTokens and itlSamples are tracked in every mode —
    // the differential tests compare them across modes — but only
    // emitted to JSON when chunkedEnabled keeps off-mode byte-stable).
    bool chunkedEnabled = false;
    std::size_t chunkSlices = 0;      //!< prefill slices executed
    std::uint64_t chunkPrefillTokens = 0; //!< tokens across all slices
    std::size_t mixedSteps = 0;       //!< steps running both phases
    std::size_t starvationKicks = 0;  //!< forced slices past budget
    std::uint64_t maxStepPrefillTokens = 0; //!< worst single step
    std::vector<double> itlSamples;   //!< per-token decode gaps [s]

    // Speculative decoding (counters only move when spec is on; the
    // JSON emitters gate on the flag so off-mode output stays
    // byte-stable). Closure invariant in any restart-free run:
    // specAccepted + specRejected + specBonus == outputTokens.
    // decodeSteps is tracked in every mode (the spec differential
    // tests compare it across modes) but never emitted to JSON.
    std::size_t decodeSteps = 0;       //!< target decode/verify passes
    bool specEnabled = false;
    std::size_t specVerifySteps = 0;   //!< propose->verify cycles
    std::uint64_t specDraftTokens = 0; //!< draft tokens proposed
    std::uint64_t specAccepted = 0;    //!< draft tokens accepted
    std::uint64_t specRejected = 0;    //!< rejection-resampled tokens
    std::uint64_t specBonus = 0;       //!< bonus tokens (k/k accepted)
};

/** Outcome of serving a trace. */
struct ServeMetrics
{
    std::size_t completed = 0;
    double makespan = 0.0;            //!< seconds to drain the trace
    double kvUtilizationPeak = 0.0;   //!< peak KV-pool occupancy
    double kvUtilizationMean = 0.0;   //!< mean at decode-step bounds
    double peakBatchOccupancy = 0.0;  //!< max sequences in one step
    double tokensPerSecond = 0.0;     //!< output tokens / makespan
    SampleSummary ttft{};             //!< time to first token
    SampleSummary tpot{};             //!< time per output token
    double sloAttainment = 0.0;       //!< fraction meeting both SLOs
    double meanBatchOccupancy = 0.0;  //!< sequences per decode step

    // Resilience accounting (all zero in a fault-free default run,
    // except submitted/outputTokens/availability which describe it).
    std::size_t submitted = 0;        //!< requests in the trace
    std::uint64_t outputTokens = 0;   //!< tokens of completed requests
    double availability = 0.0;        //!< completed / submitted
    std::size_t retries = 0;          //!< re-queued admissions
    std::size_t shed = 0;             //!< rejected under KV pressure
    std::size_t timedOut = 0;         //!< dropped past their deadline
    std::size_t failed = 0;           //!< dropped: retry budget spent
    std::size_t restarts = 0;         //!< enclave restarts survived
    std::size_t attestRejections = 0; //!< failed admission handshakes
    double faultDowntime = 0.0;       //!< seconds re-provisioning

    // Paged-KV scheduling (all zero in reserved mode).
    std::size_t kvPreemptions = 0;
    std::size_t kvSwapOuts = 0;
    std::size_t kvSwapIns = 0;
    double kvSwapSeconds = 0.0;

    // Prefix caching (all zero with prefixMode=off; emitted to JSON
    // only when prefixEnabled so existing output stays byte-stable).
    bool prefixEnabled = false;
    std::size_t prefixHits = 0;
    std::size_t prefixMisses = 0;
    std::uint64_t prefixCachedTokens = 0;
    std::uint64_t prefillTokensComputed = 0;
    std::size_t prefixEvictions = 0;
    std::uint64_t prefixEvictedBlocks = 0;
    std::uint64_t prefixPinnedPeak = 0;

    // Chunked prefill (all zero with chunk mode off; emitted to JSON
    // only when chunkedEnabled so existing output stays byte-stable).
    bool chunkedEnabled = false;
    SampleSummary itl{};              //!< inter-token decode gaps
    std::size_t chunkSlices = 0;
    std::uint64_t chunkPrefillTokens = 0;
    std::size_t mixedSteps = 0;
    std::size_t starvationKicks = 0;
    std::uint64_t maxStepPrefillTokens = 0;

    // Speculative decoding (all zero with spec off; emitted to JSON
    // only when specEnabled so existing output stays byte-stable).
    std::size_t decodeSteps = 0;      //!< target decode/verify passes
    bool specEnabled = false;
    std::size_t specVerifySteps = 0;
    std::uint64_t specDraftTokens = 0;
    std::uint64_t specAccepted = 0;
    std::uint64_t specRejected = 0;
    std::uint64_t specBonus = 0;

    /** Per-event fault timeline (empty without a schedule). */
    std::vector<fault::FaultRecord> faultTimeline;
};

/** Export a ServeMetrics (including its fault timeline) as JSON. */
void writeMetrics(JsonWriter &json, const ServeMetrics &m);

/**
 * Abstract per-step cost model so CPU and GPU deployments share the
 * serving loop.
 */
class StepModel
{
  public:
    virtual ~StepModel() = default;

    /** Seconds to prefill one request of `in_len` tokens. */
    virtual double prefill(unsigned in_len) const = 0;

    /** Seconds for one decode step over `nseq` seqs at avg `pos`. */
    virtual double decodeStep(double nseq, double avg_pos) const = 0;

    /**
     * Seconds to prefill a request of `total` tokens whose leading
     * `cached` tokens already sit in KV. The default charges the
     * marginal cost prefill(total) - prefill(cached), which keeps any
     * superlinear term (attention FLOPs, the EPC/MEE pressure a large
     * working set induces) attributed to the uncached suffix.
     */
    virtual double
    prefillFrom(unsigned cached, unsigned total) const
    {
        if (cached == 0)
            return prefill(total);
        const double a = prefill(total);
        const double b = prefill(cached);
        return a > b ? a - b : 0.0;
    }

    /**
     * Seconds to prefill a `chunk`-token slice of a prompt whose
     * leading `done` tokens already sit in KV, inside a step that is
     * `shared` with other work (a decode batch or a preceding slice).
     * The default is the telescoping marginal cost
     * prefillFrom(done, done + chunk), which sums back to
     * prefill(total) exactly — time-neutral chunking. Concrete models
     * override it to price the slice on its *marginal* working set:
     * a shared step streams the weights once for everyone, so a slice
     * riding along only pays its own activations + KV traffic through
     * the TEE byte tax, while per-slice fixed op/launch costs are paid
     * in full — small chunks genuinely shrink the modeled EPC
     * pressure but buy that with per-launch overhead.
     */
    virtual double
    prefillChunk(unsigned done, unsigned chunk, bool shared) const
    {
        (void)shared;
        return prefillFrom(done, done + chunk);
    }

    /**
     * Seconds for one fused speculative-verify step: `nseq` sequences
     * at mean context depth `avg_pos`, each scoring `k` draft tokens
     * plus the bonus position in a single target pass. The identity
     * verifyStep(n, 0, pos) == decodeStep(n, pos) must hold — it is
     * what makes spec-off runs byte-identical. The default prices k+1
     * sequential decode steps (time-neutral, no amortization);
     * concrete models override it to stream the weights once and pay
     * the per-step fixed TEE costs once for all k+1 positions.
     */
    virtual double
    verifyStep(double nseq, double k, double avg_pos) const
    {
        return (k + 1.0) * decodeStep(nseq, avg_pos + k / 2.0);
    }
};

/** CPU deployment under a TEE backend. */
std::unique_ptr<StepModel>
makeCpuStepModel(const hw::CpuSpec &cpu,
                 std::shared_ptr<const tee::TeeBackend> backend,
                 const llm::ModelConfig &model,
                 const llm::RunParams &params);

/** GPU deployment (confidential or raw). */
std::unique_ptr<StepModel> makeGpuStepModel(const hw::GpuSpec &gpu,
                                            bool confidential,
                                            const llm::ModelConfig &model,
                                            hw::Dtype dtype);

/**
 * The serving simulator: replays a trace against a step model under a
 * batching policy and reports SLO metrics.
 */
class Server
{
  public:
    Server(std::unique_ptr<StepModel> step, ServerConfig cfg);

    /** Simulate; the trace is copied and annotated internally. */
    ServeMetrics run(std::vector<Request> trace) const;

    /**
     * Simulate and hand back the annotated per-request trace
     * (firstToken/finish filled in; finish < 0 marks a request that
     * was shed, timed out, or dropped).
     */
    ServeMetrics run(std::vector<Request> trace,
                     std::vector<Request> &annotated) const;

    const ServerConfig &config() const { return cfg_; }

  private:
    ServeMetrics runStatic(std::vector<Request> &trace) const;
    ServeMetrics runContinuous(std::vector<Request> &trace) const;
    ServeMetrics finalize(const std::vector<Request> &trace,
                          double makespan, double occupancy_sum,
                          std::size_t steps,
                          const ServeTally &tally) const;

    std::unique_ptr<StepModel> step_;
    ServerConfig cfg_;
};

} // namespace cllm::serve

#endif // CLLM_SERVE_SERVING_HH
