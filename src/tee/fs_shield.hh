/**
 * @file
 * Encrypted-file shield, modelling Gramine's protected files / LUKS
 * full-disk encryption for TDX (Section III-B): files at rest are
 * AES-CTR encrypted per 4 KiB block and authenticated with an
 * HMAC-SHA256 over (path, block index, ciphertext), keyed from a
 * sealing key. The store is in-memory; the interesting behaviour is
 * the crypto envelope and tamper detection, which the tests exercise.
 */

#ifndef CLLM_TEE_FS_SHIELD_HH
#define CLLM_TEE_FS_SHIELD_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/ctr.hh"
#include "crypto/hmac.hh"

namespace cllm::tee {

/**
 * Encrypted key-value file store.
 */
class FsShield
{
  public:
    /** Bind to a sealing key (e.g. from QuotingEnclave::sealingKey). */
    explicit FsShield(const crypto::Digest256 &sealing_key);

    /** Encrypt and store a file. Overwrites bump the version. */
    void put(const std::string &path,
             const std::vector<std::uint8_t> &plaintext);

    /**
     * Fetch, verify, and decrypt a file. Returns nullopt when absent
     * or when integrity verification fails.
     */
    std::optional<std::vector<std::uint8_t>>
    get(const std::string &path) const;

    /** Whether a path exists (does not verify). */
    bool contains(const std::string &path) const;

    /** Remove a file; returns false when absent. */
    bool remove(const std::string &path);

    /** Number of stored files. */
    std::size_t size() const { return files_.size(); }

    /** Stored ciphertext size for a path (0 if absent). */
    std::size_t storedBytes(const std::string &path) const;

    /**
     * Test hook: flip one ciphertext byte, modelling an attacker with
     * storage access. Returns false when the path is absent.
     */
    bool tamper(const std::string &path, std::size_t offset);

  private:
    struct File
    {
        std::vector<std::uint8_t> cipher;
        crypto::Digest256 mac{};
        std::uint64_t version = 0;
    };

    crypto::Digest256 macOf(const std::string &path,
                            const File &f) const;
    std::uint64_t nonceOf(const std::string &path,
                          std::uint64_t version) const;

    crypto::AesCtr cipher_;
    std::vector<std::uint8_t> macKey_;
    std::map<std::string, File> files_;
};

} // namespace cllm::tee

#endif // CLLM_TEE_FS_SHIELD_HH
