/**
 * @file
 * Paged-KV walkthrough: how the KV allocation discipline changes what
 * a fixed amount of enclave memory buys. The same generation-heavy
 * Poisson trace replays against one TDX serving instance three times
 * — reserved (whole-request block reservation at admission), paged
 * with recompute preemption, and paged with swap-to-EPC preemption —
 * and prints the batch-density and latency comparison plus the paged
 * engine's preemption accounting.
 *
 * The interesting regime is outLen >> inLen: reserved pins the whole
 * future generation's blocks before the first token, while paged
 * admission needs only the prompt's blocks and grows one token at a
 * time, evicting the youngest sequence (recompute or EPC swap) when
 * the pool runs dry.
 */

#include <iostream>
#include <memory>

#include "serve/serving.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

} // namespace

int
main()
{
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams deploy;
    deploy.inLen = 128;
    deploy.outLen = 512;
    deploy.batch = 32;
    deploy.sockets = 1;
    deploy.cores = cpu.coresPerSocket;

    // Generation-heavy chat shape: short prompts, long answers.
    WorkloadConfig load;
    load.arrivalRate = 0.6;
    load.numRequests = 120;
    load.meanInLen = 128;
    load.meanOutLen = 384;
    load.seed = 33;

    std::cout << "Paged vs reserved KV on a TDX instance "
                 "(Llama2-7B bf16)\n";
    std::cout << "pool: 1024 blocks x 16 tokens; short prompts, "
                 "long generations\n\n";

    struct Run
    {
        const char *name;
        KvMode mode;
        KvPreemptPolicy preempt;
    };
    const Run runs[] = {
        {"reserved", KvMode::Reserved, KvPreemptPolicy::Recompute},
        {"paged/recompute", KvMode::Paged,
         KvPreemptPolicy::Recompute},
        {"paged/swap-epc", KvMode::Paged, KvPreemptPolicy::SwapToEpc},
    };

    Table t({"discipline", "completed", "tok/s", "TTFT p95 [s]",
             "peak batch", "KV mean", "preempts", "swap-outs",
             "swap [s]"});
    for (const Run &r : runs) {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        cfg.kvBlocks = 1024;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = r.mode;
        cfg.paged.preempt = r.preempt;
        cfg.paged.kvBytesPerToken =
            model.kvBytesPerToken(hw::Dtype::Bf16);
        // Keep one block of headroom so a fresh admission does not
        // instantly evict the sequence it just displaced into.
        cfg.paged.minFreeBlocks = 8;

        Server server(
            makeCpuStepModel(cpu, shared(tee::makeTdx()), model,
                             deploy),
            cfg);
        const ServeMetrics m = server.run(generateWorkload(load));
        t.addRow({r.name, fmtInt(m.completed),
                  fmt(m.tokensPerSecond), fmt(m.ttft.p95, 2),
                  fmtInt(static_cast<std::size_t>(
                      m.peakBatchOccupancy)),
                  fmtPct(100.0 * m.kvUtilizationMean),
                  fmtInt(m.kvPreemptions), fmtInt(m.kvSwapOuts),
                  fmt(m.kvSwapSeconds, 2)});
    }
    t.print(std::cout);

    std::cout << "\nReserved admission needs blocks for "
                 "inLen+outLen up front; paged needs only the "
                 "prompt,\nso the same pool runs a denser batch "
                 "until eviction pressure appears.\n";
    return 0;
}
