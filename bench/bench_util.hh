/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef CLLM_BENCH_BENCH_UTIL_HH
#define CLLM_BENCH_BENCH_UTIL_HH

#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "llm/perf_cluster.hh"
#include "par/pool.hh"
#include "serve/serving.hh"
#include "util/table.hh"

namespace cllm::bench {

/**
 * Evaluate `fn(i)` for every grid point i in [0, n) on the cllm::par
 * pool and return the results in index order. The sweep binaries use
 * this to fan their parameter grids out across cores: each grid
 * point's computation is independent and deterministic (any nested
 * parallelFor inside `fn` runs inline on the worker), so the returned
 * vector is identical to a serial sweep — only the wall-clock drops.
 * Print from the returned vector, never from inside `fn`.
 */
template <typename T, typename Fn>
std::vector<T>
runGrid(std::size_t n, Fn &&fn)
{
    std::vector<T> out(n);
    par::parallelFor(0, n, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            out[i] = fn(i);
    });
    return out;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &artefact, const std::string &what,
       const std::string &paper_band)
{
    std::cout << "=== " << artefact << ": " << what << " ===\n";
    if (!paper_band.empty())
        std::cout << "paper reports: " << paper_band << "\n";
    std::cout << "\n";
}

/** Throughput run parameters used across the CPU figures. */
inline llm::RunParams
throughputParams(const hw::CpuSpec &cpu, unsigned sockets = 1)
{
    llm::RunParams p;
    p.batch = 6;
    p.beam = 4;
    p.inLen = 1024;
    p.outLen = 128;
    p.sockets = sockets;
    p.cores = sockets * cpu.coresPerSocket;
    return p;
}

/** Latency run parameters (batch 1, beam 1). */
inline llm::RunParams
latencyParams(const hw::CpuSpec &cpu, unsigned sockets = 1)
{
    llm::RunParams p = throughputParams(cpu, sockets);
    p.batch = 1;
    p.beam = 1;
    return p;
}

/** Shared-ownership wrapper around a freshly built TEE backend. */
inline std::shared_ptr<const tee::TeeBackend>
sharedBackend(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

/** Deployment shape of the serving studies: 1024 in / 256 out,
 *  batch 32, one socket. */
inline llm::RunParams
serveDeployParams(const hw::CpuSpec &cpu)
{
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return p;
}

/** The seed-99 trace replayed by the serving and fleet studies:
 *  Poisson 0.45 req/s, 250 requests, 512 in / 128 out tokens. */
inline serve::WorkloadConfig
serveSeedWorkload()
{
    serve::WorkloadConfig load;
    load.arrivalRate = 0.45;
    load.numRequests = 250;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 99;
    return load;
}

/** Scale-out request shape (Section V-D4): batch 4, 512 in /
 *  128 out. */
inline llm::ClusterRunParams
scaleoutClusterParams()
{
    llm::ClusterRunParams p;
    p.batch = 4;
    p.inLen = 512;
    p.outLen = 128;
    return p;
}

/** The CPU counterpart of the scale-out shape: two sockets, all
 *  cores. */
inline llm::RunParams
scaleoutCpuParams(const hw::CpuSpec &cpu)
{
    llm::RunParams p;
    p.batch = 4;
    p.inLen = 512;
    p.outLen = 128;
    p.sockets = 2;
    p.cores = cpu.totalCores();
    return p;
}

} // namespace cllm::bench

#endif // CLLM_BENCH_BENCH_UTIL_HH
