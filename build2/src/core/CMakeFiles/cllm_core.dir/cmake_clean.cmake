file(REMOVE_RECURSE
  "CMakeFiles/cllm_core.dir/experiment.cc.o"
  "CMakeFiles/cllm_core.dir/experiment.cc.o.d"
  "CMakeFiles/cllm_core.dir/summary.cc.o"
  "CMakeFiles/cllm_core.dir/summary.cc.o.d"
  "libcllm_core.a"
  "libcllm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
