#include "tee/session.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::tee {

std::uint64_t
dhModPow(std::uint64_t base, std::uint64_t exp)
{
    unsigned __int128 result = 1;
    unsigned __int128 b = base % kDhPrime;
    while (exp > 0) {
        if (exp & 1)
            result = result * b % kDhPrime;
        b = b * b % kDhPrime;
        exp >>= 1;
    }
    return static_cast<std::uint64_t>(result);
}

DhKeyPair::DhKeyPair(std::uint64_t seed)
{
    std::uint64_t s = seed;
    // Clamp into [2, p-2].
    secret_ = 2 + splitmix64(s) % (kDhPrime - 3);
    pub_ = dhModPow(kDhGenerator, secret_);
}

std::uint64_t
DhKeyPair::sharedSecret(std::uint64_t peer_public) const
{
    if (peer_public < 2 || peer_public >= kDhPrime)
        cllm_fatal("DH peer public value out of group range");
    return dhModPow(peer_public, secret_);
}

crypto::Digest256
bindPublicValue(std::uint64_t pub)
{
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<std::uint8_t>(pub >> (56 - 8 * i));
    return crypto::sha256(buf, sizeof(buf));
}

SessionKeys
deriveSessionKeys(std::uint64_t shared_secret)
{
    crypto::Digest256 base{};
    for (int i = 0; i < 8; ++i) {
        base[i] =
            static_cast<std::uint8_t>(shared_secret >> (56 - 8 * i));
    }
    SessionKeys keys;
    keys.clientToServer = crypto::deriveKey(base, "session-c2s");
    keys.serverToClient = crypto::deriveKey(base, "session-s2c");
    return keys;
}

ServerHello
makeServerHello(const QuotingEnclave &platform,
                const Measurement &enclave,
                const DhKeyPair &server_keys)
{
    ServerHello hello;
    hello.dhPublic = server_keys.publicValue();
    hello.quote = platform.generateQuote(
        enclave, bindPublicValue(hello.dhPublic));
    return hello;
}

HandshakeResult
completeHandshake(const QuoteVerifier &verifier, const ServerHello &hello,
                  const DhKeyPair &client_keys)
{
    HandshakeResult result;
    result.status = verifier.verify(hello.quote);
    if (result.status != VerifyStatus::Ok)
        return result;
    // The quote must bind exactly the DH value we are about to use.
    if (!crypto::digestEqual(hello.quote.reportData,
                             bindPublicValue(hello.dhPublic))) {
        result.status = VerifyStatus::BadSignature;
        return result;
    }
    result.keys =
        deriveSessionKeys(client_keys.sharedSecret(hello.dhPublic));
    result.ok = true;
    return result;
}

double
ReprovisionCostModel::seconds(std::uint64_t weight_bytes) const
{
    if (weightDecryptBytesPerSec <= 0.0)
        cllm_fatal("ReprovisionCostModel: non-positive decrypt rate");
    const double attest =
        1e-3 * (enclaveBuildMs + quoteGenerateMs + quoteVerifyMs +
                networkRttMs * roundTrips);
    return attest + static_cast<double>(weight_bytes) /
                        weightDecryptBytesPerSec;
}

SecureChannel::SecureChannel(const crypto::Digest256 &key)
    : cipher_(crypto::toAesKey(crypto::deriveKey(key, "channel-enc")))
{
    const crypto::Digest256 mk = crypto::deriveKey(key, "channel-mac");
    macKey_.assign(mk.begin(), mk.end());
}

crypto::Digest256
SecureChannel::macOf(const SealedMessage &msg) const
{
    std::vector<std::uint8_t> buf;
    buf.reserve(8 + msg.ciphertext.size());
    for (int i = 0; i < 8; ++i) {
        buf.push_back(
            static_cast<std::uint8_t>(msg.sequence >> (56 - 8 * i)));
    }
    buf.insert(buf.end(), msg.ciphertext.begin(), msg.ciphertext.end());
    return crypto::hmacSha256(macKey_, buf.data(), buf.size());
}

SealedMessage
SecureChannel::seal(const std::vector<std::uint8_t> &plaintext)
{
    SealedMessage msg;
    msg.sequence = ++sendSeq_;
    msg.ciphertext = plaintext;
    cipher_.transform(msg.sequence, 0, msg.ciphertext);
    msg.mac = macOf(msg);
    return msg;
}

std::optional<std::vector<std::uint8_t>>
SecureChannel::open(const SealedMessage &msg)
{
    if (msg.sequence != recvSeq_ + 1)
        return std::nullopt; // replay or reorder
    if (!crypto::digestEqual(msg.mac, macOf(msg)))
        return std::nullopt;
    ++recvSeq_;
    std::vector<std::uint8_t> plain = msg.ciphertext;
    cipher_.transform(msg.sequence, 0, plain);
    return plain;
}

} // namespace cllm::tee
