/**
 * @file
 * cllm sweep tool: a small CLI over the public API so deployments can
 * be explored without writing C++. Prints one row per configuration,
 * optionally as CSV.
 *
 * Usage:
 *   sweep_tool [--model 7b|13b|70b|llama3|gptj|falcon]
 *              [--machine emr1|emr2|spr]
 *              [--backend bare|vm|vmth|vmnb|sgx|tdx|all]
 *              [--dtype fp32|bf16|int8] [--batch N[,N...]]
 *              [--input N] [--output N] [--beam N]
 *              [--sockets N] [--cores N] [--no-amx] [--csv]
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace cllm;

namespace {

std::vector<unsigned>
parseList(const std::string &s)
{
    std::vector<unsigned> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(static_cast<unsigned>(std::stoul(item)));
    return out;
}

llm::ModelConfig
modelByName(const std::string &name)
{
    if (name == "7b")
        return llm::llama2_7b();
    if (name == "13b")
        return llm::llama2_13b();
    if (name == "70b")
        return llm::llama2_70b();
    if (name == "llama3")
        return llm::llama3_8b();
    if (name == "gptj")
        return llm::gptj_6b();
    if (name == "falcon")
        return llm::falcon_7b();
    cllm_fatal("unknown model '", name,
               "' (7b|13b|70b|llama3|gptj|falcon)");
}

hw::CpuSpec
machineByName(const std::string &name)
{
    if (name == "emr1")
        return hw::emr1();
    if (name == "emr2")
        return hw::emr2();
    if (name == "spr")
        return hw::spr();
    cllm_fatal("unknown machine '", name, "' (emr1|emr2|spr)");
}

hw::Dtype
dtypeByName(const std::string &name)
{
    if (name == "fp32")
        return hw::Dtype::Fp32;
    if (name == "bf16")
        return hw::Dtype::Bf16;
    if (name == "int8")
        return hw::Dtype::Int8;
    cllm_fatal("unknown dtype '", name, "' (fp32|bf16|int8)");
}

std::vector<core::Backend>
backendsByName(const std::string &name)
{
    if (name == "bare")
        return {core::Backend::Bare};
    if (name == "vm")
        return {core::Backend::Vm};
    if (name == "vmth")
        return {core::Backend::VmTh};
    if (name == "vmnb")
        return {core::Backend::VmNb};
    if (name == "sgx")
        return {core::Backend::Sgx};
    if (name == "tdx")
        return {core::Backend::Tdx};
    if (name == "all") {
        return {core::Backend::Bare, core::Backend::Vm,
                core::Backend::Sgx, core::Backend::Tdx};
    }
    cllm_fatal("unknown backend '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model_name = "7b", machine_name = "emr1";
    std::string backend_name = "all", dtype_name = "bf16";
    std::vector<unsigned> batches = {1};
    unsigned in_len = 1024, out_len = 128, beam = 1;
    unsigned sockets = 1, cores = 0;
    bool amx = true, csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                cllm_fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--model")
            model_name = next();
        else if (arg == "--machine")
            machine_name = next();
        else if (arg == "--backend")
            backend_name = next();
        else if (arg == "--dtype")
            dtype_name = next();
        else if (arg == "--batch")
            batches = parseList(next());
        else if (arg == "--input")
            in_len = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--output")
            out_len = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--beam")
            beam = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--sockets")
            sockets = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--cores")
            cores = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--no-amx")
            amx = false;
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << "see the file header for usage\n";
            return 0;
        } else {
            cllm_fatal("unknown argument '", arg, "'");
        }
    }

    const llm::ModelConfig model = modelByName(model_name);
    const hw::CpuSpec cpu = machineByName(machine_name);
    const auto backends = backendsByName(backend_name);

    core::Experiment exp;
    Table t({"backend", "batch", "tput [tok/s]", "e2e [tok/s]",
             "latency [ms/tok]", "overhead vs bare"});
    for (unsigned batch : batches) {
        llm::RunParams p;
        p.batch = batch;
        p.beam = beam;
        p.inLen = in_len;
        p.outLen = out_len;
        p.dtype = dtypeByName(dtype_name);
        p.amx = amx;
        p.sockets = sockets;
        p.cores = cores;
        const auto bare =
            exp.runCpu(cpu, core::Backend::Bare, model, p);
        for (core::Backend b : backends) {
            const auto r = exp.runCpu(cpu, b, model, p);
            t.addRow({r.backend, std::to_string(batch),
                      fmt(r.timing.decodeTput), fmt(r.timing.e2eTput),
                      fmt(1e3 * r.timing.meanTokenLatency),
                      fmtPct(core::Experiment::compare(r, bare)
                                 .tputOverheadPct)});
        }
    }
    std::cout << model.name << " on " << cpu.name << ", "
              << dtype_name << (amx ? " (AMX)" : " (no AMX)") << "\n";
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
