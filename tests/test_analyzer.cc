/**
 * @file
 * Tests for the text analyzer feeding ElasticLite.
 */

#include <gtest/gtest.h>

#include "rag/analyzer.hh"

using namespace cllm::rag;

TEST(Analyzer, SplitsOnNonAlnum)
{
    Analyzer a;
    const auto t = a.analyze("hello, world! foo-bar");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], "hello");
    EXPECT_EQ(t[1], "world");
    EXPECT_EQ(t[2], "foo");
    EXPECT_EQ(t[3], "bar");
}

TEST(Analyzer, Lowercases)
{
    Analyzer a;
    const auto t = a.analyze("HeLLo WORLD");
    EXPECT_EQ(t[0], "hello");
    EXPECT_EQ(t[1], "world");
}

TEST(Analyzer, RemovesStopwords)
{
    Analyzer a;
    const auto t = a.analyze("the cat and the hat");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], "cat");
    EXPECT_EQ(t[1], "hat");
}

TEST(Analyzer, StopwordsCanBeKept)
{
    AnalyzerConfig cfg;
    cfg.removeStopwords = false;
    Analyzer a(cfg);
    EXPECT_EQ(a.analyze("the cat").size(), 2u);
}

TEST(Analyzer, DropsShortTokens)
{
    Analyzer a;
    const auto t = a.analyze("a x yz abc");
    // "a" is a stopword anyway; "x" too short; "yz" passes (len 2).
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], "yz");
}

TEST(Analyzer, KeepsDigits)
{
    Analyzer a;
    const auto t = a.analyze("llama2 70b");
    EXPECT_EQ(t[0], "llama2");
    EXPECT_EQ(t[1], "70b");
}

TEST(Analyzer, EmptyInput)
{
    Analyzer a;
    EXPECT_TRUE(a.analyze("").empty());
    EXPECT_TRUE(a.analyze("  ,.;  ").empty());
}

TEST(Stemmer, PluralStripping)
{
    EXPECT_EQ(Analyzer::stem("models"), "model");
    EXPECT_EQ(Analyzer::stem("caches"), "cache");
    EXPECT_EQ(Analyzer::stem("glass"), "glass"); // no ss stripping
}

TEST(Stemmer, IesToY)
{
    EXPECT_EQ(Analyzer::stem("queries"), "query");
    EXPECT_EQ(Analyzer::stem("latencies"), "latency");
}

TEST(Stemmer, IngAndEd)
{
    EXPECT_EQ(Analyzer::stem("running"), "runn");
    EXPECT_EQ(Analyzer::stem("encrypted"), "encrypt");
}

TEST(Stemmer, DerivationalSuffixes)
{
    EXPECT_EQ(Analyzer::stem("virtualization"), "virtualize");
    EXPECT_EQ(Analyzer::stem("encryption"), "encrypte");
    EXPECT_EQ(Analyzer::stem("measurement"), "measure");
}

TEST(Stemmer, StemmedFormsMatch)
{
    // The retrieval property that matters: different inflections of a
    // word map to one index term.
    Analyzer a;
    const auto q = a.analyze("encrypting");
    const auto d = a.analyze("encrypted");
    ASSERT_FALSE(q.empty());
    ASSERT_FALSE(d.empty());
    EXPECT_EQ(q[0], d[0]);
}

TEST(Analyzer, StemmingCanBeDisabled)
{
    AnalyzerConfig cfg;
    cfg.stem = false;
    Analyzer a(cfg);
    EXPECT_EQ(a.analyze("models")[0], "models");
}
