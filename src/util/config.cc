#include "util/config.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace cllm {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

Config::ParseResult
Config::parse(const std::string &text)
{
    ParseResult result;
    Config &cfg = result.config;

    std::istringstream in(text);
    std::string line;
    std::string section; // "" = global section
    int line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#' || t[0] == ';')
            continue;
        if (t.front() == '[') {
            if (t.back() != ']') {
                result.error = "line " + std::to_string(line_no) +
                               ": unterminated section header";
                return result;
            }
            section = trim(t.substr(1, t.size() - 2));
            if (section.empty()) {
                result.error = "line " + std::to_string(line_no) +
                               ": empty section name";
                return result;
            }
            if (!cfg.data_.count(section))
                cfg.sectionOrder_.push_back(section);
            cfg.data_[section]; // materialize
            continue;
        }
        const std::size_t eq = t.find('=');
        if (eq == std::string::npos) {
            result.error = "line " + std::to_string(line_no) +
                           ": expected key = value";
            return result;
        }
        const std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        // Strip trailing comments on value lines.
        const std::size_t hash = value.find_first_of("#;");
        if (hash != std::string::npos)
            value = trim(value.substr(0, hash));
        if (key.empty()) {
            result.error =
                "line " + std::to_string(line_no) + ": empty key";
            return result;
        }
        if (!cfg.data_.count(section) && section.empty())
            cfg.sectionOrder_.push_back(section);
        auto &sec = cfg.data_[section];
        if (!sec.count(key))
            cfg.keyOrder_[section].push_back(key);
        sec[key] = value;
    }
    result.ok = true;
    return result;
}

Config::ParseResult
Config::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult r;
        r.error = "cannot open '" + path + "'";
        return r;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

bool
Config::has(const std::string &section, const std::string &key) const
{
    auto it = data_.find(section);
    return it != data_.end() && it->second.count(key) != 0;
}

std::string
Config::getString(const std::string &section, const std::string &key,
                  const std::string &fallback) const
{
    auto it = data_.find(section);
    if (it == data_.end())
        return fallback;
    auto kit = it->second.find(key);
    return kit == it->second.end() ? fallback : kit->second;
}

long
Config::getInt(const std::string &section, const std::string &key,
               long fallback) const
{
    if (!has(section, key))
        return fallback;
    const std::string v = getString(section, key);
    std::size_t used = 0;
    long out = 0;
    try {
        out = std::stol(v, &used);
    } catch (...) {
        cllm_fatal("config [", section, "] ", key, " = '", v,
                   "' is not an integer");
    }
    if (used != v.size())
        cllm_fatal("config [", section, "] ", key, " = '", v,
                   "' has trailing junk");
    return out;
}

double
Config::getDouble(const std::string &section, const std::string &key,
                  double fallback) const
{
    if (!has(section, key))
        return fallback;
    const std::string v = getString(section, key);
    std::size_t used = 0;
    double out = 0.0;
    try {
        out = std::stod(v, &used);
    } catch (...) {
        cllm_fatal("config [", section, "] ", key, " = '", v,
                   "' is not a number");
    }
    if (used != v.size())
        cllm_fatal("config [", section, "] ", key, " = '", v,
                   "' has trailing junk");
    return out;
}

bool
Config::getBool(const std::string &section, const std::string &key,
                bool fallback) const
{
    if (!has(section, key))
        return fallback;
    std::string v = getString(section, key);
    for (auto &c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (v == "true" || v == "yes" || v == "1" || v == "on")
        return true;
    if (v == "false" || v == "no" || v == "0" || v == "off")
        return false;
    cllm_fatal("config [", section, "] ", key, " = '", v,
               "' is not a boolean");
}

std::vector<std::string>
Config::sections() const
{
    return sectionOrder_;
}

std::vector<std::string>
Config::keys(const std::string &section) const
{
    auto it = keyOrder_.find(section);
    return it == keyOrder_.end() ? std::vector<std::string>{}
                                 : it->second;
}

} // namespace cllm
