/**
 * @file
 * Tests for the paged KV-cache block pool: allocation, growth,
 * copy-on-write forking, exhaustion, and accounting — plus
 * parameterized property sweeps over pool geometries (no double-free,
 * monotone occupancy, admission reservations cover the full context).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "serve/kv_pool.hh"
#include "util/rng.hh"

using namespace cllm::serve;

namespace {

KvPoolConfig
smallPool(std::uint64_t blocks = 8, unsigned block_tokens = 4)
{
    KvPoolConfig cfg;
    cfg.totalBlocks = blocks;
    cfg.blockTokens = block_tokens;
    return cfg;
}

} // namespace

TEST(KvPool, AdmitsAndAccounts)
{
    KvBlockPool pool(smallPool());
    ASSERT_TRUE(pool.addSequence(1, 6)); // needs ceil(6/4) = 2 blocks
    EXPECT_EQ(pool.blocksOf(1), 2u);
    EXPECT_EQ(pool.tokens(1), 6u);
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_NEAR(pool.utilization(), 0.25, 1e-9);
}

TEST(KvPool, AppendAllocatesOnBoundary)
{
    KvBlockPool pool(smallPool());
    ASSERT_TRUE(pool.addSequence(1, 4)); // exactly one full block
    EXPECT_EQ(pool.blocksOf(1), 1u);
    ASSERT_TRUE(pool.appendToken(1)); // crosses into block 2
    EXPECT_EQ(pool.blocksOf(1), 2u);
    ASSERT_TRUE(pool.appendToken(1)); // within block 2
    EXPECT_EQ(pool.blocksOf(1), 2u);
    EXPECT_EQ(pool.tokens(1), 6u);
}

TEST(KvPool, RejectsWhenFull)
{
    KvBlockPool pool(smallPool(2, 4));
    ASSERT_TRUE(pool.addSequence(1, 8)); // both blocks
    EXPECT_FALSE(pool.addSequence(2, 1));
    EXPECT_FALSE(pool.appendToken(1)); // would need a third block
    // The failed ops must not leak or corrupt.
    EXPECT_EQ(pool.freeBlocks(), 0u);
    pool.release(1);
    EXPECT_EQ(pool.freeBlocks(), 2u);
    EXPECT_TRUE(pool.addSequence(2, 1));
}

TEST(KvPool, ReleaseReturnsBlocks)
{
    KvBlockPool pool(smallPool());
    pool.addSequence(1, 8);
    pool.addSequence(2, 8);
    EXPECT_EQ(pool.freeBlocks(), 4u);
    pool.release(1);
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_EQ(pool.tokens(1), 0u);
}

TEST(KvPool, ForkSharesFullBlocks)
{
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 8); // two full blocks
    ASSERT_TRUE(pool.fork(1, 2));
    // No partial block: everything shared, no extra allocation.
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_EQ(pool.tokens(2), 8u);
}

TEST(KvPool, ForkCopiesPartialBlock)
{
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 6); // 1 full + 1 partial
    ASSERT_TRUE(pool.fork(1, 2));
    // Partial block duplicated: 3 blocks in use.
    EXPECT_EQ(pool.freeBlocks(), 5u);
}

TEST(KvPool, CopyOnWriteOnSharedBoundary)
{
    // Fork on a full-block boundary shares everything; the next
    // append lands in a fresh block so beams never clobber each
    // other.
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 4);
    ASSERT_TRUE(pool.fork(1, 2));
    EXPECT_EQ(pool.freeBlocks(), 7u); // one shared block
    ASSERT_TRUE(pool.appendToken(1)); // new private block for 1
    ASSERT_TRUE(pool.appendToken(2)); // new private block for 2
    EXPECT_EQ(pool.freeBlocks(), 5u);
    EXPECT_EQ(pool.blocksOf(1), 2u);
    EXPECT_EQ(pool.blocksOf(2), 2u);
}

TEST(KvPool, ReleaseOfForkKeepsParentIntact)
{
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 8);
    pool.fork(1, 2);
    pool.release(2);
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_EQ(pool.tokens(1), 8u);
    // Parent can still grow.
    EXPECT_TRUE(pool.appendToken(1));
}

TEST(KvPool, CanAdmitChecksWithoutAllocating)
{
    KvBlockPool pool(smallPool(4, 4));
    EXPECT_TRUE(pool.canAdmit(16));
    EXPECT_FALSE(pool.canAdmit(17));
    EXPECT_EQ(pool.freeBlocks(), 4u); // unchanged
}

TEST(KvPool, ManySequencesChurn)
{
    KvBlockPool pool(smallPool(64, 8));
    for (int round = 0; round < 20; ++round) {
        for (SeqId s = 0; s < 8; ++s)
            ASSERT_TRUE(pool.addSequence(round * 100 + s, 17));
        for (SeqId s = 0; s < 8; ++s) {
            for (int t = 0; t < 5; ++t)
                ASSERT_TRUE(pool.appendToken(round * 100 + s));
        }
        for (SeqId s = 0; s < 8; ++s)
            pool.release(round * 100 + s);
    }
    EXPECT_EQ(pool.freeBlocks(), 64u); // no leaks
    EXPECT_EQ(pool.utilization(), 0.0);
}

TEST(KvPoolDeath, ApiMisuseFatal)
{
    KvBlockPool pool(smallPool());
    pool.addSequence(1, 4);
    EXPECT_DEATH(pool.addSequence(1, 4), "duplicate");
    EXPECT_DEATH(pool.appendToken(99), "unknown");
    EXPECT_DEATH(pool.release(99), "unknown");
    EXPECT_DEATH(pool.fork(99, 100), "unknown");
    EXPECT_DEATH(pool.fork(1, 1), "existing");
}

TEST(KvPoolDeath, DegenerateConfigFatal)
{
    KvPoolConfig cfg;
    cfg.totalBlocks = 0;
    EXPECT_DEATH(KvBlockPool{cfg}, "degenerate");
}

// ---- Property sweeps over pool geometries -----------------------------
//
// Parameterized over (totalBlocks, blockTokens, seed): the invariants
// the serving simulator leans on must hold for any pool shape, not
// just the hand-picked cases above.

class KvPoolProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, unsigned, std::uint64_t>>
{
  protected:
    KvPoolConfig
    cfg() const
    {
        KvPoolConfig c;
        c.totalBlocks = std::get<0>(GetParam());
        c.blockTokens = std::get<1>(GetParam());
        return c;
    }

    std::uint64_t
    seed() const
    {
        return std::get<2>(GetParam());
    }
};

TEST_P(KvPoolProperty, ChurnNeverLeaksOrDoubleFrees)
{
    // Random admit/append/fork/release churn. A double-free would trip
    // the pool's refcount panic; a leak shows up as missing free
    // blocks once every survivor is released. Along the way, free
    // blocks can never exceed the pool size.
    KvBlockPool pool(cfg());
    cllm::Rng rng(seed());
    std::vector<SeqId> live;
    SeqId next_id = 1;
    for (int op = 0; op < 400; ++op) {
        const double dice = rng.uniform();
        if (dice < 0.4) {
            const auto toks = static_cast<unsigned>(
                rng.uniformInt(1, 3 * cfg().blockTokens));
            if (pool.addSequence(next_id, toks))
                live.push_back(next_id);
            ++next_id;
        } else if (dice < 0.7 && !live.empty()) {
            const SeqId id = live[rng.uniformInt(0, live.size() - 1)];
            pool.appendToken(id); // allowed to fail when full
        } else if (dice < 0.8 && !live.empty()) {
            const SeqId parent =
                live[rng.uniformInt(0, live.size() - 1)];
            if (pool.fork(parent, next_id))
                live.push_back(next_id);
            ++next_id;
        } else if (!live.empty()) {
            const std::size_t at = rng.uniformInt(0, live.size() - 1);
            pool.release(live[at]);
            live.erase(live.begin() + at);
        }
        ASSERT_LE(pool.freeBlocks(), cfg().totalBlocks);
        ASSERT_GE(pool.utilization(), 0.0);
        ASSERT_LE(pool.utilization(), 1.0);
    }
    for (SeqId id : live)
        pool.release(id);
    EXPECT_EQ(pool.freeBlocks(), cfg().totalBlocks);
    EXPECT_EQ(pool.utilization(), 0.0);
}

TEST_P(KvPoolProperty, OccupancyMonotoneUnderAllocation)
{
    // Admitting and growing sequences (no releases) can only raise
    // occupancy; peak utilization is non-decreasing.
    KvBlockPool pool(cfg());
    cllm::Rng rng(seed());
    double peak = 0.0;
    std::vector<SeqId> live;
    SeqId id = 1;
    for (int op = 0; op < 200; ++op) {
        const double before = pool.utilization();
        if (rng.chance(0.5) || live.empty()) {
            if (pool.addSequence(id, static_cast<unsigned>(
                                         rng.uniformInt(
                                             1, 2 * cfg().blockTokens))))
                live.push_back(id);
            ++id;
        } else {
            pool.appendToken(live[rng.uniformInt(0, live.size() - 1)]);
        }
        const double after = pool.utilization();
        ASSERT_GE(after, before); // failed ops allocate nothing
        ASSERT_GE(after, 0.0);
        ASSERT_LE(after, 1.0);
        peak = std::max(peak, after);
        ASSERT_EQ(peak, after); // monotone: the latest IS the peak
    }
}

TEST_P(KvPoolProperty, AdmissionReservationCoversFullContext)
{
    // The serving loop admits with canAdmit(inLen + outLen) and then
    // reserves that whole context up front. The property the decode
    // loop relies on: a successful reservation owns enough block
    // capacity for every future token, so decode can never fail on KV
    // exhaustion mid-request.
    KvBlockPool pool(cfg());
    cllm::Rng rng(seed());
    std::vector<SeqId> live;
    SeqId id = 1;
    for (int trial = 0; trial < 100; ++trial) {
        const auto in_len = static_cast<unsigned>(
            rng.uniformInt(1, 4 * cfg().blockTokens));
        const auto out_len = static_cast<unsigned>(
            rng.uniformInt(1, 2 * cfg().blockTokens));
        const unsigned context = in_len + out_len;
        if (!pool.canAdmit(context)) {
            // Rejection must be honest: the blocks really are scarce.
            const std::uint64_t need =
                (context + cfg().blockTokens - 1) / cfg().blockTokens;
            EXPECT_GT(need, pool.freeBlocks());
            if (!live.empty()) { // make room, as preemption would
                const std::size_t at =
                    rng.uniformInt(0, live.size() - 1);
                pool.release(live[at]);
                live.erase(live.begin() + at);
            }
            continue;
        }
        ASSERT_TRUE(pool.addSequence(id, context));
        EXPECT_GE(pool.blocksOf(id) * cfg().blockTokens, context);
        EXPECT_EQ(pool.tokens(id), context);
        live.push_back(id);
        ++id;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, KvPoolProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(8, 64, 257),
                       ::testing::Values<unsigned>(1, 4, 16),
                       ::testing::Values<std::uint64_t>(1, 42)),
    [](const auto &info) {
        return "blocks" + std::to_string(std::get<0>(info.param)) +
               "_tok" + std::to_string(std::get<1>(info.param)) +
               "_seed" + std::to_string(std::get<2>(info.param));
    });
