/**
 * @file
 * Lightweight ASCII table and CSV emitters used by the bench binaries
 * to print figure/table data in a uniform format.
 */

#ifndef CLLM_UTIL_TABLE_HH
#define CLLM_UTIL_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace cllm {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"backend", "tput [tok/s]", "overhead [%]"});
 *   t.addRow({"TDX", fmt(123.4), fmt(5.6)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmt(double v, int decimals = 2);

/** Format a percentage (value already in percent). */
std::string fmtPct(double v, int decimals = 1);

/** Format an integer with thousands separators. */
std::string fmtInt(std::uint64_t v);

} // namespace cllm

#endif // CLLM_UTIL_TABLE_HH
