/**
 * @file
 * Property-style parameterized sweeps over the whole model surface:
 * invariants that must hold for EVERY (backend x dtype x batch)
 * combination, every page-size/translation regime, every message
 * size, rather than the single points the unit tests pin down.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "core/experiment.hh"
#include "util/stats.hh"
#include "crypto/sha256.hh"
#include "llm/perf_cpu.hh"
#include "mem/mee_tree.hh"
#include "mem/tlb.hh"
#include "tee/session.hh"
#include "util/units.hh"

using namespace cllm;

// ---- CPU timing-model invariants over the configuration grid ----------

using PerfCase = std::tuple<core::Backend, hw::Dtype, unsigned>;

class PerfGrid : public ::testing::TestWithParam<PerfCase>
{
};

TEST_P(PerfGrid, RunInvariantsHold)
{
    const auto [backend, dtype, batch] = GetParam();
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    llm::RunParams p;
    p.batch = batch;
    p.dtype = dtype;
    p.inLen = 256;
    p.outLen = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    const auto r = exp.runCpu(cpu, backend, llm::llama2_7b(), p);

    // Structural invariants.
    EXPECT_EQ(r.timing.tokenLatencies.size(), p.outLen);
    EXPECT_GT(r.timing.prefillSeconds, 0.0);
    EXPECT_GT(r.timing.decodeTput, 0.0);
    EXPECT_GT(r.timing.e2eTput, 0.0);
    EXPECT_LT(r.timing.e2eTput, r.timing.decodeTput * 1.0001);
    for (double t : r.timing.tokenLatencies)
        EXPECT_GT(t, 0.0);

    // Consistency: mean latency matches the filtered sample mean and
    // throughput is its inverse scaled by batch.
    EXPECT_NEAR(r.timing.decodeTput * r.timing.meanTokenLatency,
                p.batch, 1e-6);

    // No protected backend may be faster than bare metal.
    const auto bare =
        exp.runCpu(cpu, core::Backend::Bare, llm::llama2_7b(), p);
    EXPECT_LE(r.timing.decodeTput, bare.timing.decodeTput * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfGrid,
    ::testing::Combine(::testing::Values(core::Backend::Bare,
                                         core::Backend::Vm,
                                         core::Backend::VmTh,
                                         core::Backend::Sgx,
                                         core::Backend::Tdx),
                       ::testing::Values(hw::Dtype::Fp32,
                                         hw::Dtype::Bf16,
                                         hw::Dtype::Int8),
                       ::testing::Values(1u, 8u, 64u)),
    [](const ::testing::TestParamInfo<PerfCase> &info) {
        std::string name =
            std::string(core::backendName(std::get<0>(info.param))) +
            "_" + hw::dtypeName(std::get<1>(info.param)) + "_b" +
            std::to_string(std::get<2>(info.param));
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---- Throughput monotonicity in cores, for every backend --------------

class CoreSweep : public ::testing::TestWithParam<core::Backend>
{
};

TEST_P(CoreSweep, MoreCoresNeverSlower)
{
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.batch = 8;
    p.inLen = 128;
    p.outLen = 16;
    p.sockets = 1;
    double prev = 0.0;
    for (unsigned cores : {4u, 8u, 16u, 32u, 60u}) {
        p.cores = cores;
        const auto r = exp.runCpu(cpu, GetParam(), llm::llama2_7b(), p);
        EXPECT_GE(r.timing.decodeTput, prev * 0.999) << cores;
        prev = r.timing.decodeTput;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CoreSweep,
    ::testing::Values(core::Backend::Bare, core::Backend::Vm,
                      core::Backend::Sgx, core::Backend::Tdx),
    [](const ::testing::TestParamInfo<core::Backend> &info) {
        std::string n = core::backendName(info.param);
        for (auto &c : n)
            if (c == ' ')
                c = '_';
        return n;
    });

// ---- TLB model monotonicity over regimes -------------------------------

using TlbCase = std::tuple<mem::PageSize, mem::TranslationMode>;

class TlbGrid : public ::testing::TestWithParam<TlbCase>
{
};

TEST_P(TlbGrid, FactorMonotoneInWorkingSet)
{
    const auto [page, mode] = GetParam();
    mem::TlbModel m;
    double prev = 1.0;
    for (std::uint64_t ws_gb : {1ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
        mem::AccessPattern p;
        p.workingSetBytes = ws_gb * GiB;
        const double f = m.bandwidthFactor(300e9, page, mode, p);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, prev + 1e-12) << ws_gb << " GiB";
        prev = f;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, TlbGrid,
    ::testing::Combine(::testing::Values(mem::PageSize::Page4K,
                                         mem::PageSize::Page2M,
                                         mem::PageSize::Page1G),
                       ::testing::Values(mem::TranslationMode::Native,
                                         mem::TranslationMode::Nested,
                                         mem::TranslationMode::NestedTdx)),
    [](const ::testing::TestParamInfo<TlbCase> &info) {
        const char *pages =
            std::get<0>(info.param) == mem::PageSize::Page4K   ? "p4k"
            : std::get<0>(info.param) == mem::PageSize::Page2M ? "p2m"
                                                               : "p1g";
        const char *mode =
            std::get<1>(info.param) == mem::TranslationMode::Native
                ? "native"
            : std::get<1>(info.param) == mem::TranslationMode::Nested
                ? "nested"
                : "tdx";
        return std::string(pages) + "_" + mode;
    });

// ---- MEE roundtrip across geometries -----------------------------------

using MeeCase = std::tuple<unsigned, unsigned>; // lines, arity

class MeeGrid : public ::testing::TestWithParam<MeeCase>
{
};

TEST_P(MeeGrid, RoundtripAndTamperDetection)
{
    const auto [lines, arity] = GetParam();
    mem::PhysMem phys(lines);
    mem::MeeTree mee(phys, crypto::sha256(std::string("k")), arity);

    // Write a pattern to every 7th line, verify all, tamper one.
    for (std::size_t i = 0; i < lines; i += 7) {
        mem::CacheLine l{};
        for (std::size_t b = 0; b < l.size(); ++b)
            l[b] = static_cast<std::uint8_t>(i + b);
        mee.writeLine(i, l);
    }
    for (std::size_t i = 0; i < lines; i += 7) {
        const auto r = mee.readLine(i);
        ASSERT_TRUE(r.ok) << "line " << i;
        EXPECT_EQ(r.data[1], static_cast<std::uint8_t>(i + 1));
    }
    phys.raw()[(lines / 2) * mem::kLineBytes] ^= 0xff;
    EXPECT_FALSE(mee.readLine(lines / 2).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MeeGrid,
    ::testing::Combine(::testing::Values(8u, 64u, 513u),
                       ::testing::Values(2u, 8u, 16u)),
    [](const ::testing::TestParamInfo<MeeCase> &info) {
        return "l" + std::to_string(std::get<0>(info.param)) + "_a" +
               std::to_string(std::get<1>(info.param));
    });

// ---- SHA-256 incremental == one-shot across lengths --------------------

class ShaLengths : public ::testing::TestWithParam<int>
{
};

TEST_P(ShaLengths, IncrementalMatchesOneShot)
{
    const int len = GetParam();
    std::string msg(len, '\0');
    for (int i = 0; i < len; ++i)
        msg[i] = static_cast<char>('a' + i % 26);

    crypto::Sha256 h;
    // Absorb in awkward chunk sizes.
    std::size_t off = 0;
    std::size_t chunk = 1;
    while (off < msg.size()) {
        const std::size_t take =
            std::min(chunk, msg.size() - off);
        h.update(msg.data() + off, take);
        off += take;
        chunk = chunk * 2 + 1;
    }
    EXPECT_EQ(crypto::toHex(h.finish()),
              crypto::toHex(crypto::sha256(msg)));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ShaLengths,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65,
                                           127, 128, 1000));

// ---- Secure channel across message sizes -------------------------------

class ChannelSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(ChannelSizes, SealOpenRoundtrip)
{
    const auto key = crypto::sha256(std::string("sweep"));
    tee::SecureChannel tx(key), rx(key);
    std::vector<std::uint8_t> msg(GetParam());
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i * 17);
    const auto out = rx.open(tx.seal(msg));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 255, 4096,
                                           65536));

// ---- GPU overhead band across the full figure-11 grid ------------------

using GpuCase = std::tuple<unsigned, unsigned>; // batch, input

class GpuGrid : public ::testing::TestWithParam<GpuCase>
{
};

TEST_P(GpuGrid, ConfidentialOverheadBounded)
{
    const auto [batch, input] = GetParam();
    llm::GpuPerfModel m;
    llm::GpuRunParams p;
    p.batch = batch;
    p.inLen = input;
    p.outLen = 64;
    const auto raw = m.run(hw::h100Nvl(), llm::llama2_7b(), p);
    p.confidential = true;
    const auto cc = m.run(hw::h100Nvl(), llm::llama2_7b(), p);
    const double ov = overheadPct(raw.decodeTput, cc.decodeTput);
    EXPECT_GT(ov, 1.0);
    EXPECT_LT(ov, 10.0);
    EXPECT_GT(cc.prefillSeconds, raw.prefillSeconds * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Fig11Grid, GpuGrid,
    ::testing::Combine(::testing::Values(1u, 8u, 32u),
                       ::testing::Values(128u, 1024u, 4096u)),
    [](const ::testing::TestParamInfo<GpuCase> &info) {
        return "b" + std::to_string(std::get<0>(info.param)) + "_in" +
               std::to_string(std::get<1>(info.param));
    });
