file(REMOVE_RECURSE
  "CMakeFiles/test_manifest.dir/test_manifest.cc.o"
  "CMakeFiles/test_manifest.dir/test_manifest.cc.o.d"
  "test_manifest"
  "test_manifest.pdb"
  "test_manifest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
