/**
 * @file
 * Unit, property, and differential harness for radix-tree prefix
 * caching. Four layers:
 *
 *  1. PagedKvCache pin plumbing — external pins keep blocks allocated
 *     past release, addSequenceWithPrefix re-references shared
 *     blocks, and the extended consistent() conservation law holds.
 *  2. PrefixCache structure — insert/match round trips, the
 *     always-compute-one-token match cap, node splits on divergence,
 *     tenant scoping, LRU eviction order, live-refcount safety, and
 *     budget-pressure eviction.
 *  3. Engine differential — the same shared-prompt trace with caching
 *     off and on must complete the identical request set with
 *     identical output tokens while the cached run computes strictly
 *     fewer prefill tokens and improves TTFT.
 *  4. Regression pins — double-run byte identity of the metrics
 *     JSON, off-mode emitting no prefix keys, a golden seeded run,
 *     and fatal-path checks.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "mem/kv_paged.hh"
#include "serve/engine.hh"
#include "serve/prefix_cache.hh"
#include "serve/serving.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

std::unique_ptr<StepModel>
cpuModel()
{
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return makeCpuStepModel(cpu, shared(tee::makeTdx()),
                            llm::llama2_7b(), p);
}

ServerConfig
pagedConfig(std::uint64_t blocks, PrefixMode mode)
{
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = blocks;
    cfg.kvBlockTokens = 16;
    cfg.kvMode = KvMode::Paged;
    cfg.paged.kvBytesPerToken =
        llm::llama2_7b().kvBytesPerToken(hw::Dtype::Bf16);
    cfg.prefixMode = mode;
    return cfg;
}

/** The shared-prompt trace the differential tests replay. */
std::vector<Request>
sharedPromptTrace()
{
    WorkloadConfig load;
    load.arrivalRate = 0.45;
    load.numRequests = 120;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 99;
    std::vector<Request> trace = generateWorkload(load);
    applySharedPrefixMix(trace, SharedPrefixMix{});
    return trace;
}

/** Token IDs 0..n-1 offset by `base` — distinct bases never share a
 *  block. */
std::vector<std::int32_t>
seqTokens(std::size_t n, std::int32_t base)
{
    std::vector<std::int32_t> t(n);
    for (std::size_t i = 0; i < n; ++i)
        t[i] = base + static_cast<std::int32_t>(i);
    return t;
}

std::string
metricsJson(const ServeMetrics &m)
{
    std::ostringstream os;
    JsonWriter json(os);
    writeMetrics(json, m);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// 1. PagedKvCache pin plumbing
// ---------------------------------------------------------------------

TEST(PagedKvPins, PinsKeepBlocksAllocatedPastRelease)
{
    mem::PagedKvCache kv({8, 4});
    ASSERT_TRUE(kv.addSequence(1, 8)); // two full blocks
    std::vector<std::uint32_t> blocks = kv.blockTable(1);
    ASSERT_EQ(blocks.size(), 2u);

    kv.pin(blocks);
    EXPECT_EQ(kv.pinnedBlocks(), 2u);
    EXPECT_FALSE(kv.cacheOnly(blocks[0])); // table ref still live
    EXPECT_TRUE(kv.consistent());

    kv.release(1);
    // Pinned blocks survive the table; now cache-only.
    EXPECT_EQ(kv.usedBlocks(), 2u);
    EXPECT_TRUE(kv.cacheOnly(blocks[0]));
    EXPECT_TRUE(kv.cacheOnly(blocks[1]));
    EXPECT_TRUE(kv.consistent());

    EXPECT_EQ(kv.unpin(blocks), 2u); // frees both
    EXPECT_EQ(kv.usedBlocks(), 0u);
    EXPECT_EQ(kv.pinnedBlocks(), 0u);
    EXPECT_TRUE(kv.consistent());
}

TEST(PagedKvPins, AddSequenceWithPrefixSharesPinnedBlocks)
{
    mem::PagedKvCache kv({8, 4});
    ASSERT_TRUE(kv.addSequence(1, 10)); // 2 full + 1 partial block
    const std::vector<std::uint32_t> table = kv.blockTable(1);
    const std::vector<std::uint32_t> prefix{table[0], table[1]};
    kv.pin(prefix);
    kv.release(1);
    EXPECT_EQ(kv.usedBlocks(), 2u); // partial tail freed, pins stay

    // A new sequence over the same 8-token prefix re-references the
    // pinned blocks and allocates only its own tail.
    ASSERT_TRUE(kv.addSequenceWithPrefix(2, 10, prefix, 8));
    EXPECT_EQ(kv.usedBlocks(), 3u);
    EXPECT_EQ(kv.blockTable(2)[0], prefix[0]);
    EXPECT_EQ(kv.blockTable(2)[1], prefix[1]);
    EXPECT_EQ(kv.refCount(prefix[0]), 2u); // pin + table
    EXPECT_FALSE(kv.cacheOnly(prefix[0]));
    EXPECT_TRUE(kv.consistent());

    // The sharer grows and releases without disturbing the pins.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(kv.appendToken(2));
    kv.release(2);
    EXPECT_EQ(kv.usedBlocks(), 2u);
    EXPECT_TRUE(kv.cacheOnly(prefix[0]));
    EXPECT_EQ(kv.unpin(prefix), 2u);
    EXPECT_EQ(kv.freeBlocks(), 8u);
    EXPECT_TRUE(kv.consistent());
}

TEST(PagedKvPins, InsufficientBlocksFailAtomicallyWithPrefix)
{
    mem::PagedKvCache kv({4, 4});
    ASSERT_TRUE(kv.addSequence(1, 8));
    const std::vector<std::uint32_t> prefix = kv.blockTable(1);
    kv.pin(prefix);
    kv.release(1);
    // Prefix covers 8 of 20 tokens: needs 3 more blocks, only 2 free.
    EXPECT_FALSE(kv.addSequenceWithPrefix(2, 20, prefix, 8));
    EXPECT_EQ(kv.usedBlocks(), 2u);
    EXPECT_EQ(kv.refCount(prefix[0]), 1u); // nothing leaked
    EXPECT_TRUE(kv.consistent());
    kv.unpin(prefix);
}

// ---------------------------------------------------------------------
// 2. PrefixCache structure
// ---------------------------------------------------------------------

TEST(PrefixCacheTree, InsertMatchRoundTrip)
{
    mem::PagedKvCache kv({32, 4});
    PrefixCache cache(PrefixMode::PerTenant, &kv);

    const auto tokens = seqTokens(16, 1000); // 4 full blocks
    ASSERT_TRUE(kv.addSequence(1, 16));
    cache.insert(0, tokens, kv.blockTable(1), 1.0);
    EXPECT_EQ(cache.pinnedBlocks(), 4u);
    EXPECT_EQ(cache.nodeCount(), 1u);
    EXPECT_TRUE(cache.consistent());

    // Match caps at (16-1)/4 = 3 blocks: one token always computes.
    const PrefixMatch m = cache.peek(0, tokens);
    EXPECT_EQ(m.tokens, 12u);
    ASSERT_EQ(m.blocks.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(m.blocks[i], kv.blockTable(1)[i]);

    // A longer prompt sharing the whole inserted span matches all of
    // it.
    const auto longer = seqTokens(24, 1000);
    EXPECT_EQ(cache.peek(0, longer).tokens, 16u);

    // A disjoint prompt matches nothing.
    EXPECT_EQ(cache.peek(0, seqTokens(16, 5000)).tokens, 0u);
}

TEST(PrefixCacheTree, SplitOnBlockBoundaryDivergence)
{
    mem::PagedKvCache kv({32, 4});
    PrefixCache cache(PrefixMode::PerTenant, &kv);

    // A and B share their first 8 tokens (2 blocks), then diverge.
    auto a = seqTokens(16, 1000);
    auto b = a;
    for (std::size_t i = 8; i < 16; ++i)
        b[i] = 7000 + static_cast<std::int32_t>(i);

    ASSERT_TRUE(kv.addSequence(1, 16));
    cache.insert(0, a, kv.blockTable(1), 1.0);

    // B admits over the shared 2-block prefix, then inserts its own
    // tail — splitting A's leaf into [shared 2 | A-tail 2] and
    // hanging B's tail off the shared node.
    const PrefixMatch m = cache.commitMatch(0, b, 2.0);
    EXPECT_EQ(m.tokens, 8u);
    ASSERT_TRUE(kv.addSequenceWithPrefix(2, 16, m.blocks, m.tokens));
    cache.insert(0, b, kv.blockTable(2), 2.0);

    EXPECT_EQ(cache.nodeCount(), 3u); // shared head + two tails
    EXPECT_EQ(cache.pinnedBlocks(), 6u);
    EXPECT_TRUE(cache.consistent());
    EXPECT_TRUE(kv.consistent());

    // Both prompts now fully match (minus the always-compute cap).
    EXPECT_EQ(cache.peek(0, a).tokens, 12u);
    EXPECT_EQ(cache.peek(0, b).tokens, 12u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PrefixCacheTree, TenantScopesIsolateAndGlobalShares)
{
    mem::PagedKvCache kv({32, 4});
    const auto tokens = seqTokens(16, 1000);

    {
        PrefixCache cache(PrefixMode::PerTenant, &kv);
        ASSERT_TRUE(kv.addSequence(1, 16));
        cache.insert(7, tokens, kv.blockTable(1), 1.0);
        EXPECT_GT(cache.peek(7, tokens).tokens, 0u);
        // Another tenant with the identical prompt must see nothing:
        // cross-tenant KV sharing would leak prompt reuse timing.
        EXPECT_EQ(cache.peek(8, tokens).tokens, 0u);
        kv.release(1);
        cache.evictToFree(64, 2.0);
    }
    EXPECT_EQ(kv.usedBlocks(), 0u);
    {
        PrefixCache cache(PrefixMode::Global, &kv);
        ASSERT_TRUE(kv.addSequence(2, 16));
        cache.insert(7, tokens, kv.blockTable(2), 1.0);
        EXPECT_GT(cache.peek(8, tokens).tokens, 0u);
    }
}

TEST(PrefixCacheTree, LruEvictionOrderAndStats)
{
    mem::PagedKvCache kv({16, 4});
    PrefixCache cache(PrefixMode::PerTenant, &kv);

    ASSERT_TRUE(kv.addSequence(1, 8));
    cache.insert(0, seqTokens(8, 1000), kv.blockTable(1), 1.0);
    ASSERT_TRUE(kv.addSequence(2, 8));
    cache.insert(0, seqTokens(8, 5000), kv.blockTable(2), 2.0);
    kv.release(1);
    kv.release(2);

    // Touch the older prompt: the *other* one becomes LRU.
    cache.commitMatch(0, seqTokens(8, 1000), 3.0);

    const std::uint64_t freed = cache.evictToFree(1, 4.0);
    EXPECT_EQ(freed, 2u); // leaf granularity: both blocks go
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().evictedBlocks, 2u);
    // The touched prompt survived.
    EXPECT_GT(cache.peek(0, seqTokens(8, 1000)).tokens, 0u);
    EXPECT_EQ(cache.peek(0, seqTokens(8, 5000)).tokens, 0u);
    EXPECT_TRUE(cache.consistent());
    EXPECT_TRUE(kv.consistent());
}

TEST(PrefixCacheTree, EvictionSkipsBlocksLiveSequencesStillRead)
{
    mem::PagedKvCache kv({16, 4});
    PrefixCache cache(PrefixMode::PerTenant, &kv);

    ASSERT_TRUE(kv.addSequence(1, 8));
    cache.insert(0, seqTokens(8, 1000), kv.blockTable(1), 1.0);

    // Sequence 1 still reads those blocks: nothing is evictable.
    EXPECT_EQ(cache.evictToFree(1, 2.0), 0u);
    EXPECT_EQ(cache.pinnedBlocks(), 2u);

    kv.release(1);
    EXPECT_EQ(cache.evictToFree(1, 3.0), 2u);
    EXPECT_EQ(kv.usedBlocks(), 0u);
    EXPECT_TRUE(cache.consistent());
}

TEST(PrefixCacheTree, BudgetPressureEvictsLruBeforeTruncating)
{
    mem::PagedKvCache kv({32, 4});
    PrefixCache cache(PrefixMode::PerTenant, &kv, /*maxBlocks=*/2);

    ASSERT_TRUE(kv.addSequence(1, 8));
    cache.insert(0, seqTokens(8, 1000), kv.blockTable(1), 1.0);
    EXPECT_EQ(cache.pinnedBlocks(), 2u);
    kv.release(1);

    // The second prompt does not fit beside the first; the cold
    // first prompt is evicted to make room.
    ASSERT_TRUE(kv.addSequence(2, 8));
    cache.insert(0, seqTokens(8, 5000), kv.blockTable(2), 2.0);
    kv.release(2);
    EXPECT_LE(cache.pinnedBlocks(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.peek(0, seqTokens(8, 1000)).tokens, 0u);
    EXPECT_GT(cache.peek(0, seqTokens(8, 5000)).tokens, 0u);
    EXPECT_TRUE(cache.consistent());
    EXPECT_TRUE(kv.consistent());
}

// ---------------------------------------------------------------------
// 3. Engine differential: caching must not change what is served
// ---------------------------------------------------------------------

TEST(PrefixDifferential, IdenticalCompletionsStrictlyFewerPrefillTokens)
{
    const std::vector<Request> trace = sharedPromptTrace();

    std::vector<Request> off_out;
    const ServeMetrics off =
        Server(cpuModel(), pagedConfig(4096, PrefixMode::Off))
            .run(trace, off_out);

    std::vector<Request> on_out;
    const ServeMetrics on =
        Server(cpuModel(), pagedConfig(4096, PrefixMode::PerTenant))
            .run(trace, on_out);

    // Token-for-token identical completions: the same request set
    // finishes and every request emits the same number of tokens
    // (cached prefill skips compute, never output).
    EXPECT_EQ(on.completed, off.completed);
    EXPECT_EQ(on.outputTokens, off.outputTokens);
    EXPECT_EQ(on.shed, off.shed);
    ASSERT_EQ(on_out.size(), off_out.size());
    for (std::size_t i = 0; i < off_out.size(); ++i) {
        EXPECT_EQ(off_out[i].id, on_out[i].id);
        EXPECT_EQ(off_out[i].finish >= 0.0, on_out[i].finish >= 0.0)
            << "request " << off_out[i].id;
    }

    // ...while computing strictly less prefill under the enclave.
    EXPECT_TRUE(on.prefixEnabled);
    EXPECT_GT(on.prefixHits, 0u);
    EXPECT_GT(on.prefixCachedTokens, 0u);
    EXPECT_LT(on.prefillTokensComputed, off.prefillTokensComputed);
    EXPECT_EQ(on.prefillTokensComputed + on.prefixCachedTokens,
              off.prefillTokensComputed);
    EXPECT_LT(on.ttft.p50, off.ttft.p50);
}

TEST(PrefixDifferential, PerTenantNeverSharesAcrossTenants)
{
    // Two tenants submit the identical prompt. Per-tenant scope must
    // treat the second as a cold miss; global scope may share.
    auto makeTrace = [] {
        std::vector<Request> t;
        for (unsigned i = 0; i < 2; ++i) {
            Request r;
            r.id = i;
            r.arrival = static_cast<double>(i) * 30.0;
            r.inLen = 64;
            r.outLen = 16;
            r.tenant = i;
            r.promptTokens = seqTokens(64, 1234);
            t.push_back(r);
        }
        return t;
    };

    std::vector<Request> out;
    const ServeMetrics per_tenant =
        Server(cpuModel(), pagedConfig(1024, PrefixMode::PerTenant))
            .run(makeTrace(), out);
    EXPECT_EQ(per_tenant.prefixHits, 0u);
    EXPECT_EQ(per_tenant.prefixMisses, 2u);
    EXPECT_EQ(per_tenant.prefixCachedTokens, 0u);

    const ServeMetrics global =
        Server(cpuModel(), pagedConfig(1024, PrefixMode::Global))
            .run(makeTrace(), out);
    EXPECT_EQ(global.prefixHits, 1u);
    EXPECT_GT(global.prefixCachedTokens, 0u);
}

TEST(PrefixDifferential, ComposesWithSpeculativeDecoding)
{
    // Prefix caching trims prefill, speculation trims decode; their
    // savings must stack without disturbing each other's accounting
    // or the completion stream.
    const std::vector<Request> trace = sharedPromptTrace();

    std::vector<Request> prefix_out;
    const ServeMetrics prefix_only =
        Server(cpuModel(), pagedConfig(4096, PrefixMode::PerTenant))
            .run(trace, prefix_out);

    ServerConfig both_cfg = pagedConfig(4096, PrefixMode::PerTenant);
    both_cfg.specDecode.enabled = true;
    both_cfg.specDecode.draftTokens = 4;
    std::vector<Request> both_out;
    const ServeMetrics both =
        Server(cpuModel(), both_cfg).run(trace, both_out);

    EXPECT_EQ(both.completed, prefix_only.completed);
    EXPECT_EQ(both.outputTokens, prefix_only.outputTokens);
    ASSERT_EQ(both_out.size(), prefix_out.size());
    for (std::size_t i = 0; i < prefix_out.size(); ++i) {
        EXPECT_EQ(both_out[i].id, prefix_out[i].id);
        EXPECT_EQ(both_out[i].outLen, prefix_out[i].outLen);
    }

    // Prefill-side accounting is untouched by speculation: the same
    // prompts hit the same cached prefixes.
    EXPECT_EQ(both.prefixHits, prefix_only.prefixHits);
    EXPECT_EQ(both.prefixCachedTokens, prefix_only.prefixCachedTokens);
    EXPECT_EQ(both.prefillTokensComputed,
              prefix_only.prefillTokensComputed);

    // Decode-side accounting closes, in fewer target passes.
    EXPECT_TRUE(both.specEnabled);
    EXPECT_EQ(both.specAccepted + both.specRejected + both.specBonus,
              both.outputTokens);
    EXPECT_LT(both.decodeSteps, prefix_only.decodeSteps);
}

// ---------------------------------------------------------------------
// 4. Regression pins
// ---------------------------------------------------------------------

TEST(PrefixRegression, DoubleRunMetricsJsonByteIdentical)
{
    const std::vector<Request> trace = sharedPromptTrace();
    const ServeMetrics a =
        Server(cpuModel(), pagedConfig(2560, PrefixMode::PerTenant))
            .run(trace);
    const ServeMetrics b =
        Server(cpuModel(), pagedConfig(2560, PrefixMode::PerTenant))
            .run(trace);
    EXPECT_EQ(metricsJson(a), metricsJson(b));
}

TEST(PrefixRegression, OffModeEmitsNoPrefixKeys)
{
    const std::vector<Request> trace = sharedPromptTrace();
    const ServeMetrics off =
        Server(cpuModel(), pagedConfig(2560, PrefixMode::Off))
            .run(trace);
    const std::string json = metricsJson(off);
    EXPECT_EQ(json.find("prefix_"), std::string::npos)
        << "off-mode metrics JSON must stay byte-identical to the "
           "pre-prefix format";
    EXPECT_EQ(off.prefixHits + off.prefixMisses, 0u);
}

TEST(PrefixRegression, GoldenSeededRun)
{
    const std::vector<Request> trace = sharedPromptTrace();
    const ServeMetrics m =
        Server(cpuModel(), pagedConfig(2560, PrefixMode::PerTenant))
            .run(trace);
    std::map<std::string, double> actual;
    actual["completed"] = static_cast<double>(m.completed);
    actual["output_tokens"] = static_cast<double>(m.outputTokens);
    actual["prefix_hits"] = static_cast<double>(m.prefixHits);
    actual["prefix_misses"] = static_cast<double>(m.prefixMisses);
    actual["prefix_cached_tokens"] =
        static_cast<double>(m.prefixCachedTokens);
    actual["prefill_tokens_computed"] =
        static_cast<double>(m.prefillTokensComputed);
    actual["prefix_evictions"] =
        static_cast<double>(m.prefixEvictions);
    actual["prefix_pinned_peak_blocks"] =
        static_cast<double>(m.prefixPinnedPeak);
    actual["ttft_p50_s"] = m.ttft.p50;
    actual["ttft_p95_s"] = m.ttft.p95;
    actual["makespan_s"] = m.makespan;
    cllm::testing::checkAgainstGolden("prefix_small.json",
                                      actual);
}

TEST(PrefixDeath, PrefixRequiresPagedKv)
{
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = 1024;
    cfg.prefixMode = PrefixMode::PerTenant; // kvMode left Reserved
    EXPECT_DEATH(Server(cpuModel(), cfg), "paged");
}

TEST(PrefixDeath, PromptTokenCountMismatchIsFatal)
{
    std::vector<Request> trace;
    Request r;
    r.id = 0;
    r.arrival = 0.0;
    r.inLen = 64;
    r.outLen = 16;
    r.promptTokens = seqTokens(32, 0); // wrong: 32 != inLen
    trace.push_back(r);
    EXPECT_DEATH(
        Server(cpuModel(), pagedConfig(1024, PrefixMode::PerTenant))
            .run(trace),
        "prompt token");
}
