file(REMOVE_RECURSE
  "CMakeFiles/fig14_rag.dir/fig14_rag.cpp.o"
  "CMakeFiles/fig14_rag.dir/fig14_rag.cpp.o.d"
  "fig14_rag"
  "fig14_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
