file(REMOVE_RECURSE
  "CMakeFiles/test_attest.dir/test_attest.cc.o"
  "CMakeFiles/test_attest.dir/test_attest.cc.o.d"
  "test_attest"
  "test_attest.pdb"
  "test_attest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
