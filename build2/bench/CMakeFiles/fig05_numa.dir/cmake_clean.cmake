file(REMOVE_RECURSE
  "CMakeFiles/fig05_numa.dir/fig05_numa.cpp.o"
  "CMakeFiles/fig05_numa.dir/fig05_numa.cpp.o.d"
  "fig05_numa"
  "fig05_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
