# Empty dependencies file for thread_scaling.
# This may be replaced when dependencies are built.
