#include "fleet/presets.hh"

#include "cost/pricing.hh"
#include "serve/serving.hh"

namespace cllm::fleet {

namespace {

// The serving studies' deployment shape (see bench/serve_slo).
llm::RunParams
deployParams(const hw::CpuSpec &cpu)
{
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return p;
}

} // namespace

NodeTemplate
cpuTdxNode()
{
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = deployParams(cpu);

    NodeTemplate t;
    t.name = "cpu-tdx";
    t.makeStep = [cpu, model, deploy] {
        return serve::makeCpuStepModel(
            cpu,
            std::shared_ptr<const tee::TeeBackend>(tee::makeTdx()),
            model, deploy);
    };
    t.server.policy = serve::BatchPolicy::Continuous;
    t.server.kvBlocks = 4096;
    t.server.kvBlockTokens = 16;
    t.server.weightBytes = model.weightBytes(hw::Dtype::Bf16);
    t.pricePerHour = cost::cpuInstanceHr(cost::gcpSpotUsEast1(),
                                         deploy.cores, 128.0);
    return t;
}

NodeTemplate
cgpuH100Node()
{
    const llm::ModelConfig model = llm::llama2_7b();

    NodeTemplate t;
    t.name = "cgpu-h100";
    t.makeStep = [model] {
        return serve::makeGpuStepModel(hw::h100Nvl(), true, model,
                                       hw::Dtype::Bf16);
    };
    t.server.policy = serve::BatchPolicy::Continuous;
    t.server.kvBlocks = 16384;
    t.server.kvBlockTokens = 16;
    t.server.weightBytes = model.weightBytes(hw::Dtype::Bf16);
    t.pricePerHour = cost::cgpuH100().instanceHr;
    return t;
}

} // namespace cllm::fleet
