/**
 * @file
 * google-benchmark microbenchmarks of the functional kernels backing
 * the runtime: GEMM, matvec (dense and int8-quantized), RMSNorm,
 * softmax, RoPE, and a full TinyLlama decode step. These measure the
 * host machine (not the simulated EMR targets) and exist to keep the
 * functional substrate honest and regression-tracked.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "llm/kernels.hh"
#include "llm/runtime.hh"
#include "util/rng.hh"

using namespace cllm;
using namespace cllm::llm;

namespace {

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Tensor t(r, c);
    Rng rng(seed);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    return t;
}

void
BM_Gemm(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Tensor a = randomTensor(n, n, 1);
    const Tensor b = randomTensor(n, n, 2);
    Tensor c(n, n);
    for (auto _ : state) {
        gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_Matvec(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Tensor w = randomTensor(n, n, 3);
    std::vector<float> x(n, 1.0f), y(n);
    for (auto _ : state) {
        matvec(w, x.data(), y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n);
}
BENCHMARK(BM_Matvec)->Arg(256)->Arg(1024);

void
BM_MatvecInt8(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const QuantizedTensor q =
        QuantizedTensor::quantize(randomTensor(n, n, 4));
    std::vector<float> x(n, 1.0f), y(n);
    for (auto _ : state) {
        matvecQuantized(q, x.data(), y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n);
}
BENCHMARK(BM_MatvecInt8)->Arg(256)->Arg(1024);

void
BM_GemmTransB(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Tensor a = randomTensor(8, n, 5);  // batch of 8 activations
    const Tensor w = randomTensor(n, n, 6);  // [out x in] weights
    Tensor c(8, n);
    for (auto _ : state) {
        gemmTransB(a, w, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * 8 * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(256)->Arg(512);

void
BM_TinyLlamaBatchedStep(benchmark::State &state)
{
    ModelConfig cfg;
    cfg.layers = 4;
    cfg.hidden = 128;
    cfg.heads = 8;
    cfg.kvHeads = 8;
    cfg.ffn = 256;
    cfg.vocab = 258;
    const TinyLlama model(cfg, hw::Dtype::Fp32, 7);
    const unsigned bsz = static_cast<unsigned>(state.range(0));
    std::vector<KvCache> caches(bsz, model.makeCache());
    std::vector<KvCache *> ptrs;
    for (auto &c : caches)
        ptrs.push_back(&c);
    std::vector<TokenId> toks(bsz, 1);
    for (auto _ : state) {
        const auto logits = model.forwardBatch(toks, ptrs);
        benchmark::DoNotOptimize(logits.data());
    }
    state.SetItemsProcessed(state.iterations() * bsz);
}
BENCHMARK(BM_TinyLlamaBatchedStep)->Arg(1)->Arg(8);

void
BM_RmsNorm(benchmark::State &state)
{
    const std::size_t n = 4096;
    std::vector<float> x(n, 0.5f), w(n, 1.0f), y(n);
    for (auto _ : state) {
        rmsnorm(x.data(), w.data(), y.data(), n);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RmsNorm);

void
BM_Softmax(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<float> base(n);
    for (std::size_t i = 0; i < n; ++i)
        base[i] = static_cast<float>(i % 17) * 0.1f;
    for (auto _ : state) {
        std::vector<float> x = base;
        softmaxInPlace(x.data(), n);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Softmax)->Arg(1024)->Arg(8192);

void
BM_Rope(benchmark::State &state)
{
    std::vector<float> v(128, 1.0f);
    std::size_t pos = 0;
    for (auto _ : state) {
        applyRope(v.data(), v.size(), ++pos);
        benchmark::DoNotOptimize(v.data());
    }
}
BENCHMARK(BM_Rope);

void
BM_TinyLlamaDecodeStep(benchmark::State &state)
{
    ModelConfig cfg;
    cfg.layers = 4;
    cfg.hidden = 128;
    cfg.heads = 8;
    cfg.kvHeads = 8;
    cfg.ffn = 256;
    cfg.vocab = 258;
    const TinyLlama model(cfg, hw::Dtype::Fp32, 7);
    KvCache cache = model.makeCache();
    model.forward(1, cache); // warm the cache
    TokenId tok = 2;
    for (auto _ : state) {
        const auto logits = model.forward(tok, cache);
        tok = static_cast<TokenId>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        benchmark::DoNotOptimize(logits.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TinyLlamaDecodeStep);

} // namespace

BENCHMARK_MAIN();
