#include "hw/gpu.hh"

namespace cllm::hw {

double
GpuSpec::peakOps(Dtype dtype) const
{
    switch (dtype) {
      case Dtype::Fp32:
        return fp32Flops;
      case Dtype::Bf16:
        return bf16Flops;
      case Dtype::Int8:
        return int8Ops;
    }
    return fp32Flops;
}

GpuSpec
h100Nvl()
{
    GpuSpec g;
    g.name = "H100 NVL 94GB";
    return g;
}

} // namespace cllm::hw
