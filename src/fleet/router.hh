/**
 * @file
 * Request routing across a heterogeneous TEE fleet. Policies range
 * from the degenerate Null router (everything to the lowest-id live
 * node — the single-node equivalence baseline) through classic
 * load-balancing (round-robin, least-outstanding, KV-headroom-aware)
 * to the cost-weighted policy that operationalises the paper's
 * Insight 11: keep traffic on cheap CPU-TEE nodes until their
 * projected TTFT would breach the SLO, then spill to CC-GPU capacity.
 */

#ifndef CLLM_FLEET_ROUTER_HH
#define CLLM_FLEET_ROUTER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fleet/node.hh"

namespace cllm::fleet {

/** Dispatch policies. */
enum class RouterPolicy
{
    Null,             //!< lowest-id routable node, always
    RoundRobin,       //!< cycle over routable nodes
    LeastOutstanding, //!< fewest active+queued requests
    KvHeadroom,       //!< most free KV blocks, then least loaded
    CostAware,        //!< cheapest price tier whose TTFT projection
                      //!< holds the SLO; spill upward otherwise
    PrefixAffinity,   //!< sticky by (tenant, prompt head) so repeat
                      //!< prefixes land where their KV is cached;
                      //!< spills to least-outstanding only when home
                      //!< breaches the TTFT projection AND is
                      //!< materially busier than the alternative
};

/** Printable policy name. */
const char *routerPolicyName(RouterPolicy p);

/**
 * Stateful dispatcher. All decisions are deterministic functions of
 * the policy, the node states, and (for round-robin) the dispatch
 * count so far.
 */
class Router
{
  public:
    Router(RouterPolicy policy, double ttft_slo);

    /**
     * Choose a node for `r` arriving at `now`. Returns the node index
     * or -1 when no node is routable (the simulator backlogs).
     */
    int route(const std::vector<std::unique_ptr<Node>> &nodes,
              const serve::Request &r, double now);

  private:
    RouterPolicy policy_;
    double ttftSlo_;
    std::size_t rrCursor_ = 0;
    /**
     * PrefixAffinity state: (tenant, prompt-head hash) → node index.
     * Cached-prefix locality is per node (each engine owns its own
     * radix tree), so repeat prefixes only hit if they keep landing
     * on the same node; a spill moves the affinity with it, since the
     * spill target is where the prefix will be cached next.
     */
    std::unordered_map<std::uint64_t, int> affinity_;
};

} // namespace cllm::fleet

#endif // CLLM_FLEET_ROUTER_HH
