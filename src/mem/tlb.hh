/**
 * @file
 * Analytic TLB / address-translation cost model.
 *
 * The paper's Insights 6-7 trace a visible slice of TDX overhead to
 * address translation: nested (guest -> host) EPT walks, and TDX
 * silently downgrading 1 GiB hugepages to 2 MiB transparent hugepages,
 * raising TLB pressure. This model turns (page size, walk nesting,
 * working set, access pattern) into a bandwidth-degradation factor the
 * roofline timing consumes.
 */

#ifndef CLLM_MEM_TLB_HH
#define CLLM_MEM_TLB_HH

#include <cstdint>

namespace cllm::mem {

/** Page sizes supported by the model. */
enum class PageSize : std::uint64_t
{
    Page4K = 4ULL * 1024,
    Page2M = 2ULL * 1024 * 1024,
    Page1G = 1024ULL * 1024 * 1024,
};

/** Bytes of a PageSize. */
constexpr std::uint64_t
pageBytes(PageSize p)
{
    return static_cast<std::uint64_t>(p);
}

/** Address-translation regimes. */
enum class TranslationMode
{
    Native,   //!< single-level page walk (bare metal, SGX data path)
    Nested,   //!< guest + host EPT walk (plain VM)
    NestedTdx,//!< nested walk plus TDX SEPT/PAMT checks
};

/** Configuration of the translation hardware and regime. */
struct TlbConfig
{
    std::uint64_t stlbEntries = 2048;  //!< unified second-level TLB
    double walkNs = 30.0;              //!< native walk latency (PWC hit)
    double nestedFactor = 3.5;         //!< EPT walk blow-up
    double tdxExtraFactor = 1.25;      //!< SEPT/PAMT checks on top
    /** Fraction of a streaming walk's latency that is NOT hidden by
     *  prefetch/out-of-order overlap. */
    double streamVisibility = 0.05;
    /** Fraction visible on scattered accesses (harder to hide). */
    double randomVisibility = 0.26;
    /** Granularity of one scattered access burst (KV block, page). */
    double randomBlockBytes = 4096.0;
};

/** Characterization of a workload's memory accesses. */
struct AccessPattern
{
    std::uint64_t workingSetBytes = 0; //!< touched per pass
    double randomFraction = 0.02;      //!< line-granular scattered share
};

/**
 * Analytic translation cost: extra seconds per byte of DRAM traffic.
 */
class TlbModel
{
  public:
    explicit TlbModel(TlbConfig cfg = {});

    /** TLB reach in bytes for a page size. */
    std::uint64_t reach(PageSize page) const;

    /** Effective walk latency (ns) for a translation mode. */
    double walkLatencyNs(TranslationMode mode) const;

    /**
     * Fraction of random accesses missing the TLB: 0 when the working
     * set fits in reach, approaching 1 as it dwarfs it.
     */
    double missProbability(PageSize page,
                           const AccessPattern &pattern) const;

    /**
     * Extra translation seconds per byte of traffic. Streaming traffic
     * pays one walk per page; the random fraction pays per cache line
     * weighted by the miss probability.
     */
    double extraSecondsPerByte(PageSize page, TranslationMode mode,
                               const AccessPattern &pattern) const;

    /**
     * Bandwidth multiplier (<= 1): raw_bw -> effective bandwidth once
     * translation stalls are charged.
     */
    double bandwidthFactor(double raw_bytes_per_s, PageSize page,
                           TranslationMode mode,
                           const AccessPattern &pattern) const;

    const TlbConfig &config() const { return cfg_; }

  private:
    TlbConfig cfg_;
};

} // namespace cllm::mem

#endif // CLLM_MEM_TLB_HH
