file(REMOVE_RECURSE
  "libcllm_obs.a"
)
