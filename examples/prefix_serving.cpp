/**
 * @file
 * Prefix-caching walkthrough: what radix-tree KV reuse buys a TDX
 * serving instance when many requests open with the same system
 * prompt. The same shared-prompt Poisson trace replays twice against
 * one paged-KV server — caching off, then caching on — and the
 * example prints the differential: identical completions (same
 * requests, same token counts), strictly fewer prefill tokens
 * actually computed, and the TTFT improvement the skipped prefill
 * buys under the enclave's memory-encryption tax.
 *
 * Flags (all optional; defaults give a representative mix):
 *   --prefix <off|per_tenant|global>   sharing scope (default
 *                                      per_tenant)
 *   --prefix-tenants N / --prefix-len N / --prefix-share F
 *                                      shape of the shared-prompt mix
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "serve/serving.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

ServeMetrics
replay(const std::vector<Request> &trace, PrefixMode mode)
{
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams deploy = bench::serveDeployParams(cpu);

    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = 2560;
    cfg.kvBlockTokens = 16;
    cfg.kvMode = KvMode::Paged;
    cfg.paged.kvBytesPerToken =
        model.kvBytesPerToken(hw::Dtype::Bf16);
    cfg.prefixMode = mode;

    Server server(
        makeCpuStepModel(cpu, bench::sharedBackend(tee::makeTdx()),
                         model, deploy),
        cfg);
    return server.run(trace);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::PrefixOptions opt;
    opt.mode = PrefixMode::PerTenant;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            std::cout << "usage: prefix_serving [options]\n\n"
                      << bench::prefixUsage();
            return 0;
        }
        if (bench::parsePrefixArg(opt, argc, argv, i))
            continue;
        std::cerr << "unknown argument: " << argv[i] << "\n";
        return 1;
    }

    // The shared-system-prompt mix: a few tenants, each fronting
    // most of its requests with a fixed couple-hundred-token prompt.
    std::vector<Request> trace =
        generateWorkload(bench::serveSeedWorkload());
    applySharedPrefixMix(trace, opt.mix);

    std::cout << "Prefix caching on a TDX instance (Llama2-7B "
                 "bf16, paged KV)\n";
    std::cout << opt.mix.tenants << " tenants, "
              << opt.mix.prefixLen
              << "-token shared system prompts, "
              << fmtPct(100.0 * opt.mix.sharedFraction)
              << " of requests shared\n\n";

    const ServeMetrics off = replay(trace, PrefixMode::Off);
    const ServeMetrics on =
        opt.mode == PrefixMode::Off
            ? off
            : replay(trace, opt.mode);

    Table t({"prefix cache", "completed", "output tok",
             "prefill tok computed", "TTFT p50 [s]",
             "TTFT p95 [s]", "tok/s"});
    t.addRow({"off", fmtInt(off.completed),
              fmtInt(off.outputTokens),
              fmtInt(off.prefillTokensComputed),
              fmt(off.ttft.p50, 3), fmt(off.ttft.p95, 3),
              fmt(off.tokensPerSecond)});
    t.addRow({prefixModeName(opt.mode), fmtInt(on.completed),
              fmtInt(on.outputTokens),
              fmtInt(on.prefillTokensComputed),
              fmt(on.ttft.p50, 3), fmt(on.ttft.p95, 3),
              fmt(on.tokensPerSecond)});
    t.print(std::cout);

    if (opt.mode != PrefixMode::Off) {
        const std::size_t matches = on.prefixHits + on.prefixMisses;
        std::cout << "\nradix cache: " << fmtInt(on.prefixHits)
                  << " hits / " << fmtInt(matches) << " admissions ("
                  << (matches ? fmtPct(100.0 * on.prefixHits /
                                       static_cast<double>(matches))
                              : std::string("-"))
                  << "), " << fmtInt(on.prefixCachedTokens)
                  << " prompt tokens served from cache, "
                  << fmtInt(on.prefixEvictions)
                  << " evictions, peak "
                  << fmtInt(on.prefixPinnedPeak)
                  << " pinned blocks\n";
        std::cout << "differential: completions identical ("
                  << fmtInt(on.completed) << " requests, "
                  << fmtInt(on.outputTokens)
                  << " output tokens in both runs); cache-on "
                     "computed "
                  << fmtInt(off.prefillTokensComputed -
                            on.prefillTokensComputed)
                  << " fewer prefill tokens\n";
        if (on.completed != off.completed ||
            on.outputTokens != off.outputTokens) {
            std::cerr << "differential FAILED: completions "
                         "diverged between cache-off and "
                         "cache-on\n";
            return 1;
        }
    }

    std::cout << "\nA hit pins nothing new: the matched blocks' "
                 "refcounts already hold them; only the uncached "
                 "prompt tail is prefilled (and pays the "
                 "memory-encryption tax).\n";
    return 0;
}
