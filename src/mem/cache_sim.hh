/**
 * @file
 * Functional set-associative cache simulator with LRU replacement.
 * Used to ground the analytic assumptions the timing model makes
 * (streaming working sets larger than the LLC miss ~always; resident
 * sets hit ~always; the MEE's on-chip counter cache achieves the hit
 * rates MeeCostModel assumes) — and available to users who want to
 * replay their own address traces against the modelled hierarchies.
 */

#ifndef CLLM_MEM_CACHE_SIM_HH
#define CLLM_MEM_CACHE_SIM_HH

#include <cstdint>
#include <vector>

namespace cllm::mem {

/** Cache geometry. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
};

/**
 * A set-associative LRU cache over byte addresses.
 */
class CacheSim
{
  public:
    explicit CacheSim(CacheConfig cfg = {});

    /** Touch one byte address; returns true on hit. */
    bool access(std::uint64_t addr);

    /** Touch a contiguous byte range (line-granular). */
    void accessRange(std::uint64_t addr, std::uint64_t bytes);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Miss ratio over all accesses (0 when untouched). */
    double missRatio() const;

    /** Number of sets. */
    std::uint64_t sets() const { return sets_; }

    const CacheConfig &config() const { return cfg_; }

    /** Drop all contents and counters. */
    void reset();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig cfg_;
    std::uint64_t sets_;
    std::vector<Line> lines_; // sets_ x ways, row-major
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace cllm::mem

#endif // CLLM_MEM_CACHE_SIM_HH
