file(REMOVE_RECURSE
  "CMakeFiles/fig06_hugepages.dir/fig06_hugepages.cpp.o"
  "CMakeFiles/fig06_hugepages.dir/fig06_hugepages.cpp.o.d"
  "fig06_hugepages"
  "fig06_hugepages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_hugepages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
