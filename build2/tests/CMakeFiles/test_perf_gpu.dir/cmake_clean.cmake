file(REMOVE_RECURSE
  "CMakeFiles/test_perf_gpu.dir/test_perf_gpu.cc.o"
  "CMakeFiles/test_perf_gpu.dir/test_perf_gpu.cc.o.d"
  "test_perf_gpu"
  "test_perf_gpu.pdb"
  "test_perf_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
