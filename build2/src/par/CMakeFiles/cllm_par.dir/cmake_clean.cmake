file(REMOVE_RECURSE
  "CMakeFiles/cllm_par.dir/pool.cc.o"
  "CMakeFiles/cllm_par.dir/pool.cc.o.d"
  "libcllm_par.a"
  "libcllm_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
