file(REMOVE_RECURSE
  "CMakeFiles/fleet_capacity.dir/fleet_capacity.cpp.o"
  "CMakeFiles/fleet_capacity.dir/fleet_capacity.cpp.o.d"
  "fleet_capacity"
  "fleet_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
