/**
 * @file
 * Tests for the functional ring collectives, including the check that
 * the cluster timing model's priced traffic factor matches what the
 * real algorithm moves.
 */

#include <gtest/gtest.h>

#include <vector>

#include "llm/collective.hh"
#include "llm/perf_cluster.hh"
#include "util/rng.hh"

using namespace cllm;
using namespace cllm::llm;

namespace {

std::vector<std::vector<float>>
randomRanks(unsigned n, std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> out(n);
    for (auto &r : out) {
        r.resize(len);
        for (auto &x : r)
            x = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
    return out;
}

std::vector<float>
referenceSum(const std::vector<std::vector<float>> &ranks)
{
    std::vector<float> sum(ranks[0].size(), 0.0f);
    for (const auto &r : ranks)
        for (std::size_t i = 0; i < r.size(); ++i)
            sum[i] += r[i];
    return sum;
}

} // namespace

TEST(AllReduce, SumsCorrectlyAcrossRankCounts)
{
    for (unsigned n : {2u, 3u, 4u, 8u}) {
        auto ranks = randomRanks(n, 64, n);
        const auto expect = referenceSum(ranks);
        ringAllReduce(ranks);
        for (unsigned r = 0; r < n; ++r) {
            for (std::size_t i = 0; i < expect.size(); ++i) {
                EXPECT_NEAR(ranks[r][i], expect[i], 1e-4)
                    << "n=" << n << " rank=" << r << " i=" << i;
            }
        }
    }
}

TEST(AllReduce, HandlesNonDivisibleLengths)
{
    auto ranks = randomRanks(4, 13, 99); // 13 % 4 != 0
    const auto expect = referenceSum(ranks);
    ringAllReduce(ranks);
    for (const auto &r : ranks)
        for (std::size_t i = 0; i < expect.size(); ++i)
            EXPECT_NEAR(r[i], expect[i], 1e-4);
}

TEST(AllReduce, SingleRankIsNoop)
{
    auto ranks = randomRanks(1, 16, 5);
    const auto orig = ranks[0];
    const auto stats = ringAllReduce(ranks);
    EXPECT_EQ(ranks[0], orig);
    EXPECT_EQ(stats.bytesSentPerRank, 0u);
    EXPECT_EQ(stats.steps, 0u);
}

TEST(AllReduce, EmptyBuffersAreNoop)
{
    std::vector<std::vector<float>> ranks(3);
    const auto stats = ringAllReduce(ranks);
    EXPECT_EQ(stats.bytesSentPerRank, 0u);
}

TEST(AllReduce, TrafficMatchesRingFactor)
{
    // The cluster timing model prices 2*(n-1)/n of the payload per
    // rank; the functional algorithm must move exactly that (within
    // chunk-rounding).
    for (unsigned n : {2u, 4u, 8u}) {
        auto ranks = randomRanks(n, 1024, n + 1);
        const auto stats = ringAllReduce(ranks);
        const double payload = 1024.0 * sizeof(float);
        const double expect = ringAllReduceFactor(n) * payload;
        EXPECT_NEAR(stats.bytesSentPerRank / expect, 1.0, 0.02)
            << "n=" << n;
        EXPECT_EQ(stats.steps, 2 * (n - 1));
    }
}

TEST(AllReduce, FactorFormula)
{
    EXPECT_DOUBLE_EQ(ringAllReduceFactor(1), 0.0);
    EXPECT_DOUBLE_EQ(ringAllReduceFactor(2), 1.0);
    EXPECT_DOUBLE_EQ(ringAllReduceFactor(4), 1.5);
}

TEST(AllReduce, ClusterModelUsesSameFactor)
{
    // The comm coefficient inside GpuClusterPerfModel::run is the
    // ring factor; cross-check through the public linkBandwidth and a
    // two-point latency measurement.
    // Factor(4)/factor(2) = 1.5; the cluster model embeds the same
    // coefficient in its per-layer collective payloads.
    EXPECT_NEAR(ringAllReduceFactor(4) / ringAllReduceFactor(2), 1.5,
                1e-12);
    GpuClusterPerfModel m;
    ClusterRunParams p;
    p.gpus = 2;
    EXPECT_GT(m.linkBandwidth(p), 0.0);
}

TEST(AllReduceDeath, RaggedBuffersFatal)
{
    std::vector<std::vector<float>> ranks(2);
    ranks[0].resize(4);
    ranks[1].resize(5);
    EXPECT_DEATH(ringAllReduce(ranks), "ragged");
}

TEST(AllGather, ConcatenatesInRankOrder)
{
    std::vector<std::vector<float>> ranks = {
        {1.0f, 2.0f}, {3.0f}, {4.0f, 5.0f}};
    const auto stats = ringAllGather(ranks);
    const std::vector<float> expect = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
    for (const auto &r : ranks)
        EXPECT_EQ(r, expect);
    EXPECT_EQ(stats.steps, 2u);
    EXPECT_GT(stats.bytesSentPerRank, 0u);
}

TEST(AllGather, SingleRankIsNoop)
{
    std::vector<std::vector<float>> ranks = {{1.0f, 2.0f}};
    const auto stats = ringAllGather(ranks);
    EXPECT_EQ(ranks[0].size(), 2u);
    EXPECT_EQ(stats.steps, 0u);
}
