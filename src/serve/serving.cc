#include "serve/serving.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::serve {

std::vector<Request>
generateWorkload(const WorkloadConfig &cfg)
{
    if (cfg.arrivalRate <= 0.0 || cfg.numRequests == 0)
        cllm_fatal("generateWorkload: degenerate workload");
    Rng rng(cfg.seed);
    std::vector<Request> out;
    out.reserve(cfg.numRequests);
    double clock = 0.0;
    for (unsigned i = 0; i < cfg.numRequests; ++i) {
        // Poisson arrivals: exponential inter-arrival gaps.
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        clock += -std::log(u) / cfg.arrivalRate;
        Request r;
        r.id = i;
        r.arrival = clock;
        r.inLen = std::max<unsigned>(
            8, static_cast<unsigned>(
                   rng.lognormal(cfg.meanInLen, cfg.lengthSigma)));
        r.outLen = std::max<unsigned>(
            4, static_cast<unsigned>(
                   rng.lognormal(cfg.meanOutLen, cfg.lengthSigma)));
        out.push_back(r);
    }
    return out;
}

const char *
batchPolicyName(BatchPolicy p)
{
    switch (p) {
      case BatchPolicy::Static:
        return "static";
      case BatchPolicy::Continuous:
        return "continuous";
    }
    return "?";
}

namespace {

/** CPU-backed step model. */
class CpuStepModel : public StepModel
{
  public:
    CpuStepModel(const hw::CpuSpec &cpu,
                 std::shared_ptr<const tee::TeeBackend> backend,
                 const llm::ModelConfig &model,
                 const llm::RunParams &params)
        : cpu_(cpu), backend_(std::move(backend)), model_(model),
          params_(params)
    {
        rates_ = perf_.rates(cpu_, *backend_, model_, params_);
    }

    double
    prefill(unsigned in_len) const override
    {
        return perf_.prefillSeconds(rates_, model_, params_, in_len);
    }

    double
    decodeStep(double nseq, double avg_pos) const override
    {
        return perf_.decodeStepSeconds(rates_, model_, params_, nseq,
                                       avg_pos);
    }

  private:
    hw::CpuSpec cpu_;
    std::shared_ptr<const tee::TeeBackend> backend_;
    llm::ModelConfig model_;
    llm::RunParams params_;
    llm::CpuPerfModel perf_;
    llm::DeploymentRates rates_;
};

/** GPU-backed step model. */
class GpuStepModel : public StepModel
{
  public:
    GpuStepModel(const hw::GpuSpec &gpu, bool confidential,
                 const llm::ModelConfig &model, hw::Dtype dtype)
        : gpu_(gpu), model_(model), dtype_(dtype)
    {
        tax_ = confidential ? tee::cgpuTax(gpu) : tee::GpuTax{};
    }

    double
    prefill(unsigned in_len) const override
    {
        const double s = in_len;
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            2.0 * static_cast<double>(model_.matmulParams()) * s +
            2.0 * model_.layers * model_.hidden * s * s;
        const double rate =
            gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bytes = model_.weightBytes(dtype_) +
                             model_.kvBytesPerToken(dtype_) * s;
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch + s * 4.0 / host_bw;
    }

    double
    decodeStep(double nseq, double avg_pos) const override
    {
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            nseq *
            (2.0 * static_cast<double>(model_.matmulParams()) +
             4.0 * model_.layers * model_.hidden * avg_pos);
        const double bytes =
            model_.weightBytes(dtype_) +
            nseq * model_.kvBytesPerToken(dtype_) * (avg_pos + 1.0);
        const double rate = gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch +
               nseq * cfg.hostBytesPerToken / host_bw;
    }

  private:
    hw::GpuSpec gpu_;
    llm::ModelConfig model_;
    hw::Dtype dtype_;
    tee::GpuTax tax_;
    llm::GpuPerfModel perf_;
};

/** A sequence active in the decode batch. */
struct Active
{
    Request *req;
    unsigned produced = 0; //!< output tokens so far
    unsigned attempts = 0; //!< retries consumed getting admitted
};

/** A request waiting for admission (fresh arrival or retry). */
struct Pending
{
    Request *req;
    double readyAt;
    unsigned attempts;
};

/** Min-heap order: earliest readyAt first, ties by request id. */
struct PendingLater
{
    bool
    operator()(const Pending &a, const Pending &b) const
    {
        if (a.readyAt != b.readyAt)
            return a.readyAt > b.readyAt;
        return a.req->id > b.req->id;
    }
};

} // namespace

std::unique_ptr<StepModel>
makeCpuStepModel(const hw::CpuSpec &cpu,
                 std::shared_ptr<const tee::TeeBackend> backend,
                 const llm::ModelConfig &model,
                 const llm::RunParams &params)
{
    return std::make_unique<CpuStepModel>(cpu, std::move(backend), model,
                                          params);
}

std::unique_ptr<StepModel>
makeGpuStepModel(const hw::GpuSpec &gpu, bool confidential,
                 const llm::ModelConfig &model, hw::Dtype dtype)
{
    return std::make_unique<GpuStepModel>(gpu, confidential, model,
                                          dtype);
}

Server::Server(std::unique_ptr<StepModel> step, ServerConfig cfg)
    : step_(std::move(step)), cfg_(std::move(cfg))
{
    if (!step_)
        cllm_fatal("Server requires a step model");
    if (cfg_.maxBatch == 0)
        cllm_fatal("Server: zero batch capacity");
    if (!cfg_.faults.empty()) {
        if (cfg_.policy == BatchPolicy::Static)
            cllm_fatal("Server: fault injection requires continuous "
                       "batching");
        if (cfg_.resilience.retryBackoff <= 0.0)
            cllm_fatal("Server: fault injection requires a positive "
                       "retry backoff");
    }
    if (cfg_.resilience.backoffMultiplier < 1.0)
        cllm_fatal("Server: backoff multiplier below 1");
    if (cfg_.resilience.shedOnKvPressure &&
        (cfg_.resilience.shedThreshold <= 0.0 ||
         cfg_.resilience.shedThreshold > 1.0))
        cllm_fatal("Server: shed threshold outside (0, 1]");
}

ServeMetrics
Server::run(std::vector<Request> trace) const
{
    std::vector<Request> annotated;
    return run(std::move(trace), annotated);
}

ServeMetrics
Server::run(std::vector<Request> trace,
            std::vector<Request> &annotated) const
{
    if (trace.empty())
        cllm_fatal("Server::run: empty trace");
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  return a.arrival < b.arrival;
              });
    ServeMetrics m = cfg_.policy == BatchPolicy::Static
                         ? runStatic(trace)
                         : runContinuous(trace);
    annotated = std::move(trace);
    return m;
}

ServeMetrics
Server::runStatic(std::vector<Request> &trace) const
{
    double clock = 0.0;
    double occupancy_sum = 0.0;
    std::size_t steps = 0;
    std::size_t next = 0;

    while (next < trace.size()) {
        // Form the next batch from queued arrivals.
        clock = std::max(clock, trace[next].arrival);
        std::vector<Request *> batch;
        while (next < trace.size() && batch.size() < cfg_.maxBatch &&
               trace[next].arrival <= clock) {
            batch.push_back(&trace[next]);
            ++next;
        }

        // Prefill everyone, then decode until the whole batch drains.
        for (Request *r : batch) {
            clock += step_->prefill(r->inLen);
            r->firstToken = clock;
        }
        unsigned max_out = 0;
        for (Request *r : batch)
            max_out = std::max(max_out, r->outLen);
        for (unsigned t = 0; t < max_out; ++t) {
            unsigned active = 0;
            double avg_pos = 0.0;
            for (Request *r : batch) {
                if (t < r->outLen) {
                    ++active;
                    avg_pos += r->inLen + t;
                }
            }
            if (active == 0)
                break;
            avg_pos /= active;
            clock += step_->decodeStep(active, avg_pos);
            occupancy_sum += active;
            ++steps;
            for (Request *r : batch) {
                if (t + 1 == r->outLen)
                    r->finish = clock;
            }
        }
    }
    return finalize(trace, clock, occupancy_sum, steps, Tally{});
}

ServeMetrics
Server::runContinuous(std::vector<Request> &trace) const
{
    double clock = 0.0;
    double occupancy_sum = 0.0;
    double kv_peak = 0.0;
    std::size_t steps = 0;
    std::vector<Active> active;
    Tally tally;

    const ResiliencePolicy &rp = cfg_.resilience;
    fault::FaultInjector inj(cfg_.faults);

    std::priority_queue<Pending, std::vector<Pending>, PendingLater>
        pending;
    for (Request &r : trace)
        pending.push({&r, r.arrival, 0});

    std::optional<KvBlockPool> pool;
    if (cfg_.kvBlocks)
        pool.emplace(KvPoolConfig{cfg_.kvBlocks, cfg_.kvBlockTokens});

    // Admission check, optionally against a pool whose usable share
    // has been shrunk by an active KvExhaustion window.
    auto can_admit = [&](const Request &r, double factor) {
        if (!pool)
            return true;
        if (!pool->canAdmit(r.inLen + r.outLen))
            return false;
        if (factor >= 1.0)
            return true;
        const std::uint64_t need =
            (r.inLen + r.outLen + cfg_.kvBlockTokens - 1) /
            cfg_.kvBlockTokens;
        const std::uint64_t used = cfg_.kvBlocks - pool->freeBlocks();
        const auto usable = static_cast<std::uint64_t>(
            factor * static_cast<double>(cfg_.kvBlocks));
        return used + need <= usable;
    };

    // Bounded retry with exponential backoff; a request that spends
    // its budget is dropped for good.
    auto requeue = [&](Request *r, unsigned attempts) {
        if (attempts > rp.maxRetries) {
            ++tally.failed;
            return;
        }
        ++tally.retries;
        double backoff = rp.retryBackoff;
        for (unsigned i = 1; i < attempts; ++i)
            backoff *= rp.backoffMultiplier;
        pending.push({r, clock + backoff, attempts});
    };

    while (!pending.empty() || !active.empty()) {
        // Enclave/TD restarts wipe everything in secure memory: the
        // KV pool, the weights, the attested session state. Pay the
        // re-provisioning downtime and retry what was in flight.
        if (inj.enabled()) {
            const unsigned crossed = inj.consumeRestarts(
                clock, static_cast<unsigned>(active.size()));
            if (crossed) {
                const double down =
                    crossed *
                    cfg_.reprovision.seconds(cfg_.weightBytes);
                clock += down;
                tally.faultDowntime += down;
                tally.restarts += crossed;
                for (Active &a : active) {
                    if (pool)
                        pool->release(a.req->id);
                    requeue(a.req, a.attempts + 1);
                }
                active.clear();
            }
        }

        const double kv_factor =
            inj.enabled() ? inj.kvCapacityFactor(clock) : 1.0;
        unsigned max_batch = cfg_.maxBatch;
        if (rp.degradedMaxBatch && inj.enabled() &&
            inj.anyWindowActive(clock)) {
            max_batch = std::max(
                1u, std::min(max_batch, rp.degradedMaxBatch));
        }

        // Admit arrivals up to batch and KV capacity; prefill on
        // admission, reserving the full context worth of blocks.
        while (!pending.empty() && active.size() < max_batch &&
               pending.top().readyAt <= clock) {
            const Pending p = pending.top();
            // Deadline: reject queued work already past its budget.
            if (rp.requestTimeout > 0.0 &&
                clock - p.req->arrival > rp.requestTimeout) {
                pending.pop();
                ++tally.timedOut;
                continue;
            }
            // Admission shedding under KV pressure.
            if (rp.shedOnKvPressure && pool &&
                pool->utilization() >= rp.shedThreshold) {
                pending.pop();
                ++tally.shed;
                continue;
            }
            // Attestation gate: no verified handshake, no admission;
            // the client backs off and retries.
            if (inj.enabled() && inj.attestationFails(clock)) {
                pending.pop();
                ++tally.attestRejections;
                requeue(p.req, p.attempts + 1);
                continue;
            }
            if (!can_admit(*p.req, kv_factor))
                break;
            pending.pop();
            Request *r = p.req;
            if (pool)
                pool->addSequence(r->id, r->inLen + r->outLen);
            double pf = step_->prefill(r->inLen);
            if (inj.enabled())
                pf *= inj.slowdown(clock);
            clock += pf;
            if (r->firstToken < 0.0)
                r->firstToken = clock;
            active.push_back({r, 0, p.attempts});
        }
        if (pool)
            kv_peak = std::max(kv_peak, pool->utilization());
        // If KV capacity blocks the head of the queue while nothing
        // runs, time must still advance: to the end of a transient
        // exhaustion window, or past a request too big to ever fit.
        if (active.empty() && !pending.empty()) {
            const Pending head = pending.top();
            if (head.readyAt <= clock &&
                !can_admit(*head.req, kv_factor)) {
                if (can_admit(*head.req, 1.0)) {
                    // Transient KvExhaustion window: wait it out.
                    clock = inj.nextWindowEnd(clock);
                } else {
                    // Request larger than the whole pool: drop it.
                    pending.pop();
                    ++tally.shed;
                }
                continue;
            }
            clock = std::max(clock, head.readyAt);
            continue;
        }
        if (active.empty())
            break; // everything remaining was dropped

        // One decode step for everyone currently active.
        double avg_pos = 0.0;
        for (const Active &a : active)
            avg_pos += a.req->inLen + a.produced;
        avg_pos /= active.size();
        double step_sec = step_->decodeStep(
            static_cast<double>(active.size()), avg_pos);
        if (inj.enabled())
            step_sec *= inj.slowdown(clock);
        clock += step_sec;
        occupancy_sum += static_cast<double>(active.size());
        ++steps;

        for (auto it = active.begin(); it != active.end();) {
            ++it->produced;
            if (it->produced >= it->req->outLen) {
                it->req->finish = clock;
                if (pool)
                    pool->release(it->req->id);
                it = active.erase(it);
            } else if (rp.requestTimeout > 0.0 &&
                       clock - it->req->arrival > rp.requestTimeout) {
                // Deadline blown mid-generation: abort and release.
                ++tally.timedOut;
                if (pool)
                    pool->release(it->req->id);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }
    ServeMetrics m = finalize(trace, clock, occupancy_sum, steps,
                              tally);
    m.kvUtilizationPeak = kv_peak;
    m.faultTimeline = inj.timeline();
    return m;
}

ServeMetrics
Server::finalize(const std::vector<Request> &trace, double makespan,
                 double occupancy_sum, std::size_t steps,
                 const Tally &tally) const
{
    ServeMetrics m;
    m.makespan = makespan;
    std::vector<double> ttft, tpot;
    std::uint64_t tokens = 0;
    std::size_t slo_ok = 0;
    for (const Request &r : trace) {
        if (r.finish < 0.0)
            continue;
        ++m.completed;
        tokens += r.outLen;
        const double first = r.firstToken - r.arrival;
        const double per_tok =
            r.outLen > 1 ? (r.finish - r.firstToken) / (r.outLen - 1)
                         : 0.0;
        ttft.push_back(first);
        if (r.outLen > 1)
            tpot.push_back(per_tok);
        if (first <= cfg_.ttftSlo &&
            (r.outLen <= 1 || per_tok <= cfg_.tpotSlo))
            ++slo_ok;
    }
    const bool dropped_any =
        tally.shed || tally.timedOut || tally.failed;
    if (m.completed == 0 && !dropped_any)
        cllm_panic("serving simulation completed no requests");
    m.tokensPerSecond =
        makespan > 0.0 ? tokens / makespan : 0.0;
    m.ttft = summarize(ttft, 0.0);
    if (!tpot.empty())
        m.tpot = summarize(tpot, 0.0);
    m.sloAttainment =
        m.completed ? static_cast<double>(slo_ok) /
                          static_cast<double>(m.completed)
                    : 0.0;
    m.meanBatchOccupancy =
        steps ? occupancy_sum / static_cast<double>(steps) : 0.0;

    m.submitted = trace.size();
    m.outputTokens = tokens;
    m.availability = m.submitted
                         ? static_cast<double>(m.completed) /
                               static_cast<double>(m.submitted)
                         : 0.0;
    m.retries = tally.retries;
    m.shed = tally.shed;
    m.timedOut = tally.timedOut;
    m.failed = tally.failed;
    m.restarts = tally.restarts;
    m.attestRejections = tally.attestRejections;
    m.faultDowntime = tally.faultDowntime;
    return m;
}

void
writeMetrics(JsonWriter &json, const ServeMetrics &m)
{
    json.beginObject();
    json.key("completed").value(
        static_cast<std::int64_t>(m.completed));
    json.key("submitted").value(
        static_cast<std::int64_t>(m.submitted));
    json.key("availability").value(m.availability);
    json.key("makespan_s").value(m.makespan);
    json.key("tokens_per_s").value(m.tokensPerSecond);
    json.key("output_tokens").value(
        static_cast<std::int64_t>(m.outputTokens));
    json.key("ttft_p50_s").value(m.ttft.p50);
    json.key("ttft_p95_s").value(m.ttft.p95);
    json.key("tpot_p95_s").value(m.tpot.p95);
    json.key("slo_attainment").value(m.sloAttainment);
    json.key("mean_batch_occupancy").value(m.meanBatchOccupancy);
    json.key("kv_utilization_peak").value(m.kvUtilizationPeak);
    json.key("retries").value(static_cast<std::int64_t>(m.retries));
    json.key("shed").value(static_cast<std::int64_t>(m.shed));
    json.key("timed_out").value(
        static_cast<std::int64_t>(m.timedOut));
    json.key("failed").value(static_cast<std::int64_t>(m.failed));
    json.key("restarts").value(
        static_cast<std::int64_t>(m.restarts));
    json.key("attest_rejections").value(
        static_cast<std::int64_t>(m.attestRejections));
    json.key("fault_downtime_s").value(m.faultDowntime);
    json.key("fault_timeline");
    fault::writeTimeline(json, m.faultTimeline);
    json.endObject();
}

} // namespace cllm::serve
