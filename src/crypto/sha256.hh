/**
 * @file
 * SHA-256 (FIPS 180-4). Used for enclave measurement, trusted-file
 * hashes in Gramine manifests, HMAC, and key derivation. This is a
 * straightforward portable implementation, verified against the NIST
 * test vectors in the unit tests.
 */

#ifndef CLLM_CRYPTO_SHA256_HH
#define CLLM_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace cllm::crypto {

/** A 256-bit digest. */
using Digest256 = std::array<std::uint8_t, 32>;

/**
 * Incremental SHA-256 hasher.
 *
 * @code
 *   Sha256 h;
 *   h.update(data, len);
 *   Digest256 d = h.finish();
 * @endcode
 */
class Sha256
{
  public:
    Sha256();

    /** Absorb `len` bytes. */
    void update(const void *data, std::size_t len);

    /** Absorb a byte vector. */
    void update(const std::vector<std::uint8_t> &data);

    /** Absorb a string's bytes. */
    void update(const std::string &data);

    /** Finalize and return the digest; the hasher must not be reused. */
    Digest256 finish();

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[8];
    std::uint8_t buf_[64];
    std::size_t bufLen_ = 0;
    std::uint64_t totalLen_ = 0;
    bool finished_ = false;
};

/** One-shot SHA-256 of a buffer. */
Digest256 sha256(const void *data, std::size_t len);

/** One-shot SHA-256 of a string. */
Digest256 sha256(const std::string &data);

/** Hex encoding of a digest (lowercase). */
std::string toHex(const Digest256 &digest);

} // namespace cllm::crypto

#endif // CLLM_CRYPTO_SHA256_HH
