# Empty compiler generated dependencies file for fig14_rag.
# This may be replaced when dependencies are built.
