file(REMOVE_RECURSE
  "CMakeFiles/test_kv_pool.dir/test_kv_pool.cc.o"
  "CMakeFiles/test_kv_pool.dir/test_kv_pool.cc.o.d"
  "test_kv_pool"
  "test_kv_pool.pdb"
  "test_kv_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
