file(REMOVE_RECURSE
  "CMakeFiles/extra_models.dir/extra_models.cpp.o"
  "CMakeFiles/extra_models.dir/extra_models.cpp.o.d"
  "extra_models"
  "extra_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
