/**
 * @file
 * Figure 3: single-socket bare-metal wall time of different inference
 * frameworks and data types for Llama2-7B, 1024 input + 128 output
 * tokens, batch = beam = 1. The paper's ranking: IPEX fastest, vLLM
 * ~50% slower, Hugging Face ~100% slower, llama.cpp in between.
 */

#include "bench_util.hh"

#include "llm/framework.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 3", "framework microbenchmark (bare metal, EMR1)",
           "IPEX fastest; vLLM +50%; HF +100%");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_7b();

    struct Config
    {
        llm::FrameworkProfile fw;
        hw::Dtype dtype;
    };
    const Config configs[] = {
        {llm::hfTransformers(), hw::Dtype::Fp32},
        {llm::hfTransformers(), hw::Dtype::Bf16},
        {llm::vllmCpu(), hw::Dtype::Fp32},
        {llm::vllmCpu(), hw::Dtype::Bf16},
        {llm::llamaCpp(), hw::Dtype::Bf16}, // mixed-precision weights
        {llm::ipex(), hw::Dtype::Bf16},
    };

    std::vector<double> runtimes;
    double ipex_runtime = 0.0;
    for (const auto &cfg : configs) {
        llm::RunParams p = latencyParams(cpu);
        p.framework = cfg.fw;
        p.dtype = cfg.dtype;
        const auto r = exp.runCpu(cpu, core::Backend::Bare, model, p);
        runtimes.push_back(r.timing.totalSeconds);
        if (cfg.fw.name == "IPEX")
            ipex_runtime = r.timing.totalSeconds;
    }

    Table t({"framework", "dtype", "runtime [s]", "vs IPEX"});
    for (std::size_t i = 0; i < runtimes.size(); ++i) {
        const auto &cfg = configs[i];
        const std::string label =
            cfg.fw.name == "Llama.cpp" ? "mixed"
                                       : hw::dtypeName(cfg.dtype);
        t.addRow({cfg.fw.name, label, fmt(runtimes[i]),
                  fmt(runtimes[i] / ipex_runtime, 2) + "x"});
    }
    t.print(std::cout);
    return 0;
}
