#include "tee/manifest.hh"

#include <cctype>
#include <sstream>

#include "util/logging.hh"
#include "util/units.hh"

namespace cllm::tee {

namespace {

/** Strip whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Remove surrounding quotes if present. */
std::string
unquote(const std::string &s)
{
    if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                          (s.front() == '\'' && s.back() == '\'')))
        return s.substr(1, s.size() - 2);
    return s;
}

/** Parse "64G" / "512M" / "4096" size literals. */
std::optional<std::uint64_t>
parseSize(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    char suffix = s.back();
    std::uint64_t mult = 1;
    std::string digits = s;
    if (suffix == 'G' || suffix == 'g') {
        mult = GiB;
        digits = s.substr(0, s.size() - 1);
    } else if (suffix == 'M' || suffix == 'm') {
        mult = MiB;
        digits = s.substr(0, s.size() - 1);
    } else if (suffix == 'K' || suffix == 'k') {
        mult = KiB;
        digits = s.substr(0, s.size() - 1);
    }
    if (digits.empty())
        return std::nullopt;
    std::uint64_t v = 0;
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v * mult;
}

/** True when `v` is a power of two. */
bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Parse a `[{ uri = "...", sha256 = "..." }, ...]` inline array. */
void
parseTrustedFiles(const std::string &value, Manifest &m)
{
    // Split on '}' boundaries; tolerant of whitespace and newlines.
    std::size_t pos = 0;
    while ((pos = value.find("uri", pos)) != std::string::npos) {
        const std::size_t eq = value.find('=', pos);
        if (eq == std::string::npos)
            break;
        const std::size_t q1 = value.find('"', eq);
        const std::size_t q2 =
            q1 == std::string::npos ? std::string::npos
                                    : value.find('"', q1 + 1);
        if (q2 == std::string::npos)
            break;
        TrustedFile tf;
        tf.uri = value.substr(q1 + 1, q2 - q1 - 1);
        // Optional sha256 in the same element (before the next '}').
        const std::size_t elem_end = value.find('}', q2);
        const std::size_t sh = value.find("sha256", q2);
        if (sh != std::string::npos &&
            (elem_end == std::string::npos || sh < elem_end)) {
            const std::size_t sq1 = value.find('"', sh);
            const std::size_t sq2 = sq1 == std::string::npos
                                        ? std::string::npos
                                        : value.find('"', sq1 + 1);
            if (sq2 != std::string::npos)
                tf.sha256Hex = value.substr(sq1 + 1, sq2 - sq1 - 1);
        }
        m.trustedFiles.push_back(std::move(tf));
        pos = q2 + 1;
    }
}

/** Parse a `[ "a", "b" ]` string array. */
std::vector<std::string>
parseStringArray(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = value.find('"', pos)) != std::string::npos) {
        const std::size_t end = value.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        out.push_back(value.substr(pos + 1, end - pos - 1));
        pos = end + 1;
    }
    return out;
}

} // namespace

void
Manifest::extendMeasurement(MeasurementBuilder &builder) const
{
    builder.extend("manifest", renderManifest(*this));
}

ManifestResult
parseManifest(const std::string &text, bool strict)
{
    ManifestResult result;
    Manifest &m = result.manifest;

    std::istringstream in(text);
    std::string line;
    std::string pending_key, pending_value;
    bool in_array = false;
    int line_no = 0;

    auto fail = [&](const std::string &why) {
        result.ok = false;
        result.error = "line " + std::to_string(line_no) + ": " + why;
    };

    auto apply = [&](const std::string &key,
                     const std::string &raw_value) -> bool {
        const std::string value = unquote(trim(raw_value));
        if (key == "libos.entrypoint") {
            m.entrypoint = value;
        } else if (key == "loader.log_level") {
            m.logLevel = value;
        } else if (key == "sgx.enclave_size") {
            auto sz = parseSize(value);
            if (!sz) {
                fail("bad enclave size '" + value + "'");
                return false;
            }
            m.enclaveSizeBytes = *sz;
        } else if (key == "sgx.max_threads") {
            m.maxThreads = static_cast<unsigned>(std::stoul(value));
        } else if (key == "sgx.edmm_enable") {
            m.edmm = (value == "true" || value == "1");
        } else if (key == "sgx.trusted_files") {
            parseTrustedFiles(raw_value, m);
        } else if (key == "fs.encrypted_files" ||
                   key == "fs.mounts.encrypted") {
            m.encryptedFiles = parseStringArray(raw_value);
        } else if (key == "fs.insecure__keys.default" ||
                   key == "sgx.key_provider") {
            m.keyProvider = value;
        } else if (key.rfind("loader.env.", 0) == 0) {
            m.env[key.substr(11)] = value;
        } else if (strict) {
            fail("unknown key '" + key + "'");
            return false;
        }
        return true;
    };

    while (std::getline(in, line)) {
        ++line_no;
        const std::string t = trim(line);
        if (in_array) {
            pending_value += "\n" + t;
            // Arrays close when brackets balance.
            long depth = 0;
            for (char c : pending_value) {
                if (c == '[')
                    ++depth;
                else if (c == ']')
                    --depth;
            }
            if (depth <= 0) {
                in_array = false;
                if (!apply(pending_key, pending_value))
                    return result;
            }
            continue;
        }
        if (t.empty() || t[0] == '#')
            continue;
        const std::size_t eq = t.find('=');
        if (eq == std::string::npos) {
            fail("expected key = value");
            return result;
        }
        const std::string key = trim(t.substr(0, eq));
        const std::string value = trim(t.substr(eq + 1));
        long depth = 0;
        for (char c : value) {
            if (c == '[')
                ++depth;
            else if (c == ']')
                --depth;
        }
        if (depth > 0) {
            in_array = true;
            pending_key = key;
            pending_value = value;
            continue;
        }
        if (!apply(key, value))
            return result;
    }
    if (in_array) {
        fail("unterminated array for key '" + pending_key + "'");
        return result;
    }
    result.ok = true;
    return result;
}

ManifestResult
validateManifest(const Manifest &m)
{
    ManifestResult r;
    r.manifest = m;
    auto fail = [&](const std::string &why) {
        r.ok = false;
        r.error = why;
    };

    if (m.entrypoint.empty()) {
        fail("libos.entrypoint missing");
        return r;
    }
    if (m.enclaveSizeBytes == 0) {
        fail("sgx.enclave_size missing");
        return r;
    }
    if (!isPow2(m.enclaveSizeBytes)) {
        fail("sgx.enclave_size must be a power of two");
        return r;
    }
    if (m.enclaveSizeBytes < 1 * GiB) {
        fail("enclave too small for LLM inference (< 1 GiB)");
        return r;
    }
    if (m.maxThreads == 0) {
        fail("sgx.max_threads missing");
        return r;
    }
    for (const auto &tf : m.trustedFiles) {
        if (tf.uri.empty()) {
            fail("trusted file with empty uri");
            return r;
        }
        if (!tf.sha256Hex.empty() && tf.sha256Hex.size() != 64) {
            fail("trusted file '" + tf.uri + "' has malformed sha256");
            return r;
        }
    }
    r.ok = true;
    return r;
}

std::string
renderManifest(const Manifest &m)
{
    std::ostringstream os;
    os << "libos.entrypoint = \"" << m.entrypoint << "\"\n";
    os << "loader.log_level = \"" << m.logLevel << "\"\n";
    for (const auto &[k, v] : m.env)
        os << "loader.env." << k << " = \"" << v << "\"\n";
    os << "sgx.enclave_size = \"" << m.enclaveSizeBytes / GiB << "G\"\n";
    os << "sgx.max_threads = " << m.maxThreads << "\n";
    os << "sgx.edmm_enable = " << (m.edmm ? "true" : "false") << "\n";
    os << "sgx.trusted_files = [\n";
    for (const auto &tf : m.trustedFiles) {
        os << "  { uri = \"" << tf.uri << "\"";
        if (!tf.sha256Hex.empty())
            os << ", sha256 = \"" << tf.sha256Hex << "\"";
        os << " },\n";
    }
    os << "]\n";
    os << "fs.encrypted_files = [";
    for (std::size_t i = 0; i < m.encryptedFiles.size(); ++i)
        os << (i ? ", " : " ") << "\"" << m.encryptedFiles[i] << "\"";
    os << " ]\n";
    if (!m.keyProvider.empty())
        os << "sgx.key_provider = \"" << m.keyProvider << "\"\n";
    return os.str();
}

std::string
exampleLlamaManifest()
{
    return R"(# Gramine manifest for Llama2 inference with IPEX
libos.entrypoint = "/usr/bin/python3"
loader.log_level = "error"
loader.env.OMP_NUM_THREADS = "32"
loader.env.LD_PRELOAD = "/usr/lib/libtcmalloc.so"
sgx.enclave_size = "64G"
sgx.max_threads = 128
sgx.edmm_enable = true
sgx.trusted_files = [
  { uri = "file:/usr/bin/python3" },
  { uri = "file:/app/run_inference.py" },
]
fs.encrypted_files = [ "file:/models/llama2-7b/" ]
sgx.key_provider = "kds://weights-key"
)";
}

} // namespace cllm::tee
