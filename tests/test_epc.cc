/**
 * @file
 * Tests for the EPC page cache (functional LRU) and its analytic
 * paging-cost model (Section IV-A).
 */

#include <gtest/gtest.h>

#include "mem/epc.hh"
#include "util/units.hh"

using namespace cllm;
using namespace cllm::mem;

TEST(EpcCache, HitsAfterInsert)
{
    EpcCache c(4);
    EXPECT_FALSE(c.access(1));
    EXPECT_TRUE(c.access(1));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(EpcCache, EvictsLeastRecentlyUsed)
{
    EpcCache c(2);
    c.access(1);
    c.access(2);
    c.access(1);     // 1 becomes MRU
    c.access(3);     // evicts 2
    EXPECT_TRUE(c.access(1));
    EXPECT_FALSE(c.access(2));
    EXPECT_EQ(c.evictions(), 2u); // 2 evicted, then 3 evicted by 2
}

TEST(EpcCache, CapacityRespected)
{
    EpcCache c(8);
    for (std::uint64_t p = 0; p < 100; ++p)
        c.access(p);
    EXPECT_EQ(c.residentPages(), 8u);
    EXPECT_EQ(c.capacityPages(), 8u);
}

TEST(EpcCache, CyclicScanBeyondCapacityAlwaysMisses)
{
    // The pathological LRU case the cost model's cliff encodes.
    EpcCache c(4);
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t p = 0; p < 6; ++p)
            c.access(p);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.missRatio(), 1.0);
}

TEST(EpcCache, WorkingSetWithinCapacityConverges)
{
    EpcCache c(8);
    for (int pass = 0; pass < 10; ++pass)
        for (std::uint64_t p = 0; p < 8; ++p)
            c.access(p);
    // Only the first pass misses.
    EXPECT_EQ(c.misses(), 8u);
    EXPECT_EQ(c.hits(), 72u);
}

TEST(EpcCache, ResetClearsEverything)
{
    EpcCache c(4);
    c.access(1);
    c.access(2);
    c.reset();
    EXPECT_EQ(c.residentPages(), 0u);
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    EXPECT_EQ(c.missRatio(), 0.0);
}

TEST(EpcCacheDeath, ZeroCapacityFatal)
{
    EXPECT_DEATH(EpcCache{0}, "zero capacity");
}

TEST(EpcCostModel, FreeWhenWorkingSetFits)
{
    EpcCostModel m;
    EXPECT_EQ(m.scanMissRatio(32ULL * GiB, 64ULL * GiB), 0.0);
    EXPECT_EQ(m.extraSecondsPerByte(32ULL * GiB, 64ULL * GiB), 0.0);
}

TEST(EpcCostModel, CliffBeyondEpc)
{
    EpcCostModel m;
    const double just_over = m.scanMissRatio(65ULL * GiB, 64ULL * GiB);
    const double far_over = m.scanMissRatio(256ULL * GiB, 64ULL * GiB);
    EXPECT_GT(just_over, 0.05);
    EXPECT_GT(far_over, just_over);
    EXPECT_LE(far_over, 1.0);
}

TEST(EpcCostModel, ExtraCostGrowsWithPressure)
{
    EpcCostModel m;
    EXPECT_LT(m.extraSecondsPerByte(70ULL * GiB, 64ULL * GiB),
              m.extraSecondsPerByte(200ULL * GiB, 64ULL * GiB));
}

TEST(EpcCostModelDeath, ZeroEpcFatal)
{
    EpcCostModel m;
    EXPECT_DEATH(m.scanMissRatio(1, 0), "zero EPC");
}
