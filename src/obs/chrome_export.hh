/**
 * @file
 * Chrome trace-event JSON export: turns a `Tracer`'s recorded events
 * into the object-format trace (`{"traceEvents": [...]}`) that
 * `chrome://tracing` and Perfetto load directly.
 *
 * Mapping. Sim-time events render under pid 1 ("sim"), one tid per
 * lane (node / deployment); wall-clock events render under pid 2
 * ("wall"), one tid per recording thread. Complete spans become 'X'
 * events, fault and routing moments become 'i' instants, request
 * lifecycles become 'b'/'n'/'e' async tracks keyed by request id,
 * and sampled values become 'C' counter tracks. Timestamps are
 * microseconds (sim seconds x 1e6; wall ns / 1e3), formatted through
 * the same `%.10g` path as every other exporter in the tree, so a
 * sim trace is byte-stable across runs and thread counts.
 *
 * An optional metrics `Registry` snapshot rides along under a
 * top-level `"metrics"` key (ignored by trace viewers, handy for
 * tooling).
 */

#ifndef CLLM_OBS_CHROME_EXPORT_HH
#define CLLM_OBS_CHROME_EXPORT_HH

#include <ostream>
#include <string>

namespace cllm::obs {

class Tracer;
class Registry;

/** Write a complete Chrome trace JSON document to `os`. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer,
                      const Registry *metrics = nullptr);

/**
 * Write the trace to a file; fatal if the path cannot be opened.
 * An empty `path` falls back to CLLM_TRACE_OUT, then to
 * `fallback`.
 */
void writeChromeTraceFile(const std::string &path,
                          const Tracer &tracer,
                          const Registry *metrics = nullptr,
                          const std::string &fallback =
                              "cllm.trace.json");

/** Resolve the output path the same way writeChromeTraceFile does. */
std::string traceOutputPath(const std::string &path,
                            const std::string &fallback);

} // namespace cllm::obs

#endif // CLLM_OBS_CHROME_EXPORT_HH
