/**
 * @file
 * Span tracer with two clock domains.
 *
 * *Sim-time* events live on the discrete-event timeline of a serving
 * or fleet simulation: request lifecycles, decode steps, fault
 * impacts, scale decisions. They are recorded in emission order by
 * the (single-threaded) simulation loop, so a sim trace is a pure
 * function of the simulation inputs — bit-identical across runs and
 * across `CLLM_THREADS` settings, and safe to pin as a golden file.
 *
 * *Wall-clock* events time real execution (pool chunks, kernels,
 * crypto) on `std::chrono::steady_clock`. They land in fixed-size
 * per-thread ring buffers — one relaxed index bump and two struct
 * stores per span, no locks, no allocation on the hot path — and are
 * only gathered at export time. Wall events are inherently
 * non-deterministic, which is why they are a separate domain (and a
 * separate `pid` lane in the Chrome export) that the determinism
 * tests never look at.
 *
 * A null `Tracer*` or `TraceMode::Off` makes every recording call a
 * cheap no-op; the simulation's arithmetic never depends on the
 * tracer, so tracing off reproduces untraced output byte-for-byte.
 *
 * Env contract (read by `Tracer::global()`):
 *   CLLM_TRACE      off|0 (default), sim|1, all|wall|2
 *   CLLM_TRACE_OUT  default output path for tools that honor it
 */

#ifndef CLLM_OBS_TRACE_HH
#define CLLM_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cllm::obs {

/** What the tracer records. */
enum class TraceMode
{
    Off, //!< record nothing (the default)
    Sim, //!< sim-time events only (deterministic)
    All, //!< sim-time + wall-clock ring buffers
};

/** Parse a CLLM_TRACE-style string; unknown values mean Off. */
TraceMode parseTraceMode(const char *s);

/** One recorded sim-time event. */
struct SimEvent
{
    enum class Ph
    {
        Complete,     //!< span with [t0, t1]
        Instant,      //!< point event
        AsyncBegin,   //!< start of a cross-lane async track
        AsyncInstant, //!< milestone on an async track
        AsyncEnd,     //!< end of an async track
        Counter,      //!< sampled counter value
    };

    Ph ph = Ph::Instant;
    std::uint32_t lane = 0; //!< exported as tid
    std::string name;
    std::string cat;        //!< async category ("" otherwise)
    std::uint64_t id = 0;   //!< async track id
    double t0 = 0.0;        //!< seconds (sim clock)
    double t1 = 0.0;        //!< Complete only
    int depth = 0;          //!< span nesting depth at emission
    double value = 0.0;     //!< Counter only
    std::vector<std::pair<std::string, double>> args;
    std::vector<std::pair<std::string, std::string>> sargs;
};

/** One wall-clock span drained from a thread's ring. */
struct WallEvent
{
    const char *name = nullptr; //!< static-storage label
    std::uint64_t t0Ns = 0;     //!< steady-clock ns since epoch
    std::uint64_t t1Ns = 0;
    std::uint32_t tid = 0;      //!< ring registration order
    std::uint64_t seq = 0;      //!< per-ring emission counter
};

/**
 * The tracer. Sim-domain recording is meant for single-threaded
 * simulation loops (one tracer per sim); wall-domain recording is
 * thread-safe and lock-free per span. Everything is inert while the
 * mode says so.
 */
class Tracer
{
  public:
    explicit Tracer(TraceMode mode = TraceMode::Off);
    ~Tracer(); // out of line: WallRing is incomplete here

    /**
     * Process-wide tracer, mode initialized from CLLM_TRACE. The
     * pool's chunk spans and other library-internal wall spans attach
     * here; sims attach whatever tracer their config points at.
     */
    static Tracer &global();

    TraceMode
    mode() const
    {
        return mode_.load(std::memory_order_relaxed);
    }

    void
    setMode(TraceMode m)
    {
        mode_.store(m, std::memory_order_relaxed);
    }

    bool simEnabled() const { return mode() != TraceMode::Off; }
    bool wallEnabled() const { return mode() == TraceMode::All; }

    /** Human name for a lane (exported as thread_name metadata). */
    void laneName(std::uint32_t lane, const std::string &name);

    // ---- sim-time domain (seconds on the simulation clock) --------
    void complete(
        std::uint32_t lane, std::string name, double t0, double t1,
        std::vector<std::pair<std::string, double>> args = {});
    void instant(
        std::uint32_t lane, std::string name, double t,
        std::vector<std::pair<std::string, double>> args = {},
        std::vector<std::pair<std::string, std::string>> sargs = {});
    void asyncBegin(std::uint32_t lane, std::string cat,
                    std::uint64_t id, std::string name, double t);
    void asyncInstant(std::uint32_t lane, std::string cat,
                      std::uint64_t id, std::string name, double t);
    void asyncEnd(std::uint32_t lane, std::string cat,
                  std::uint64_t id, std::string name, double t);
    void counterValue(std::uint32_t lane, std::string name, double t,
                      double value);

    const std::vector<SimEvent> &simEvents() const { return sim_; }
    const std::map<std::uint32_t, std::string> &lanes() const
    {
        return laneNames_;
    }

    /** Current span nesting depth on a lane (tests / diagnostics). */
    int simDepth(std::uint32_t lane) const;

    // ---- wall-clock domain ----------------------------------------
    /** Record one wall span on the calling thread's ring. */
    void wallSpan(const char *name, std::uint64_t t0_ns,
                  std::uint64_t t1_ns);

    /** Steady-clock ns since this tracer's epoch. */
    std::uint64_t nowNs() const;

    /**
     * Drain every ring into one list sorted by (t0, tid, seq).
     * Call after parallel work has quiesced.
     */
    std::vector<WallEvent> collectWall() const;

    /** Wall spans overwritten because a ring filled up. */
    std::uint64_t wallDropped() const;

    /** Forget all recorded events (mode and lane names survive). */
    void clear();

  private:
    friend class SimSpan;

    struct WallRing;

    int pushSpan(std::uint32_t lane);
    void popSpan(std::uint32_t lane);
    WallRing &myRing();

    std::atomic<TraceMode> mode_{TraceMode::Off};
    std::vector<SimEvent> sim_;
    std::map<std::uint32_t, std::string> laneNames_;
    std::map<std::uint32_t, int> depth_;
    std::uint64_t epochNs_ = 0;

    mutable std::mutex wallMu_;
    std::vector<std::unique_ptr<WallRing>> rings_;
};

/**
 * RAII sim-time span. Construction opens the span at `t0`; `end(t1)`
 * closes and records it. A span destroyed while still open closes at
 * its own start time (zero duration) so early exits never corrupt
 * nesting. Inert when `tracer` is null or sim recording is off.
 */
class SimSpan
{
  public:
    SimSpan(Tracer *tracer, std::uint32_t lane, std::string name,
            double t0);
    ~SimSpan();

    SimSpan(const SimSpan &) = delete;
    SimSpan &operator=(const SimSpan &) = delete;

    /** Close the span at `t1` with optional numeric args. */
    void end(double t1,
             std::vector<std::pair<std::string, double>> args = {});

    bool active() const { return tracer_ != nullptr; }

  private:
    Tracer *tracer_ = nullptr; //!< null once closed / when inert
    std::uint32_t lane_ = 0;
    std::string name_;
    double t0_ = 0.0;
    int depth_ = 0;
};

/**
 * RAII wall-clock span on the global tracer. When wall recording is
 * off, construction is a single relaxed atomic load and nothing else
 * — cheap enough for per-chunk instrumentation of the pool.
 */
class WallSpan
{
  public:
    explicit WallSpan(const char *name)
    {
        Tracer &t = Tracer::global();
        if (t.wallEnabled()) {
            tracer_ = &t;
            name_ = name;
            t0_ = t.nowNs();
        }
    }

    ~WallSpan()
    {
        if (tracer_)
            tracer_->wallSpan(name_, t0_, tracer_->nowNs());
    }

    WallSpan(const WallSpan &) = delete;
    WallSpan &operator=(const WallSpan &) = delete;

  private:
    Tracer *tracer_ = nullptr;
    const char *name_ = nullptr;
    std::uint64_t t0_ = 0;
};

} // namespace cllm::obs

#endif // CLLM_OBS_TRACE_HH
