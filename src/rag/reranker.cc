#include "rag/reranker.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.hh"

namespace cllm::rag {

CrossEncoder::CrossEncoder(unsigned hidden, std::uint64_t seed)
    : hidden_(hidden), embedder_(64, 1024, seed + 1)
{
    // Fixed "trained" weights: the relevance features carry strong
    // positive weight (what a trained cross-encoder learns), with a
    // small seeded random residue adding texture without being able
    // to outvote genuine overlap.
    Rng rng(seed);
    w1_.resize(static_cast<std::size_t>(hidden_) * kFeatures);
    b1_.resize(hidden_);
    w2_.resize(hidden_);
    for (auto &w : w1_)
        w = static_cast<float>(rng.gaussian(0.0, 0.06));
    for (auto &b : b1_)
        b = static_cast<float>(rng.gaussian(0.0, 0.02));
    for (auto &w : w2_)
        w = static_cast<float>(rng.gaussian(0.0, 0.06));
    for (unsigned f = 0; f < kFeatures; ++f)
        w1_[f] = 0.6f;
    b1_[0] = 0.0f;
    w2_[0] = 3.0f;
}

std::vector<double>
CrossEncoder::features(const std::string &query, const Document &doc) const
{
    const auto q_terms = analyzer_.analyze(query);
    const auto d_terms = analyzer_.analyze(doc.title + " " + doc.body);
    std::unordered_set<std::string> d_set(d_terms.begin(), d_terms.end());

    double overlap = 0.0;
    for (const auto &t : q_terms)
        overlap += d_set.count(t) ? 1.0 : 0.0;
    const double q_cov =
        q_terms.empty() ? 0.0 : overlap / static_cast<double>(
                                              q_terms.size());

    // Ordered bigram overlap.
    double bigram = 0.0;
    std::unordered_set<std::string> d_bigrams;
    for (std::size_t i = 0; i + 1 < d_terms.size(); ++i)
        d_bigrams.insert(d_terms[i] + "_" + d_terms[i + 1]);
    for (std::size_t i = 0; i + 1 < q_terms.size(); ++i)
        bigram += d_bigrams.count(q_terms[i] + "_" + q_terms[i + 1]);

    const double cos = cosine(embedder_.embed(query),
                              embedder_.embed(doc.title + " " + doc.body));
    const double len_penalty =
        std::log(1.0 + static_cast<double>(d_terms.size())) / 10.0;
    const double title_hit = [&] {
        const auto t_terms = analyzer_.analyze(doc.title);
        std::unordered_set<std::string> t_set(t_terms.begin(),
                                              t_terms.end());
        double n = 0.0;
        for (const auto &t : q_terms)
            n += t_set.count(t) ? 1.0 : 0.0;
        return q_terms.empty() ? 0.0
                               : n / static_cast<double>(q_terms.size());
    }();

    return {q_cov, bigram / 4.0, cos, title_hit, -len_penalty, 1.0};
}

double
CrossEncoder::score(const std::string &query, const Document &doc,
                    RerankStats *stats) const
{
    const auto feat = features(query, doc);
    double out = 0.0;
    for (unsigned h = 0; h < hidden_; ++h) {
        double acc = b1_[h];
        for (unsigned f = 0; f < kFeatures; ++f)
            acc += w1_[h * kFeatures + f] * feat[f];
        out += w2_[h] * std::tanh(acc);
    }
    if (stats) {
        ++stats->pairsScored;
        stats->flops += flopsPerPair();
    }
    return out;
}

std::uint64_t
CrossEncoder::flopsPerPair() const
{
    // Feature extraction (embeddings dominate) + MLP.
    return 2ULL * embedder_.flopsPerEmbed() +
           2ULL * hidden_ * kFeatures + 4ULL * hidden_;
}

std::vector<SearchHit>
CrossEncoder::rerank(const std::string &query, const ElasticLite &store,
                     const std::vector<SearchHit> &hits,
                     RerankStats *stats) const
{
    std::vector<SearchHit> out;
    out.reserve(hits.size());
    for (const auto &h : hits)
        out.push_back({h.id, score(query, store.doc(h.id), stats)});
    std::sort(out.begin(), out.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.id < b.id;
              });
    return out;
}

} // namespace cllm::rag
