/**
 * @file
 * Tests for model configurations: derived parameter counts must match
 * the published model sizes, and the byte accounting used by the
 * timing model must be consistent.
 */

#include <gtest/gtest.h>

#include "llm/model_config.hh"

using namespace cllm;
using namespace cllm::llm;

namespace {

double
billions(std::uint64_t n)
{
    return static_cast<double>(n) / 1e9;
}

} // namespace

TEST(ModelConfig, Llama2SevenBParamCount)
{
    // Published: 6.74B parameters.
    EXPECT_NEAR(billions(llama2_7b().numParams()), 6.74, 0.07);
}

TEST(ModelConfig, Llama2ThirteenBParamCount)
{
    // Published: 13.02B.
    EXPECT_NEAR(billions(llama2_13b().numParams()), 13.0, 0.15);
}

TEST(ModelConfig, Llama2SeventyBParamCount)
{
    // Published: 68.98B.
    EXPECT_NEAR(billions(llama2_70b().numParams()), 69.0, 0.8);
}

TEST(ModelConfig, Llama3EightBParamCount)
{
    // Published: 8.03B.
    EXPECT_NEAR(billions(llama3_8b().numParams()), 8.0, 0.12);
}

TEST(ModelConfig, GptJSixBParamCount)
{
    // Published: 6.05B.
    EXPECT_NEAR(billions(gptj_6b().numParams()), 6.05, 0.25);
}

TEST(ModelConfig, CrossCheckModelsAreSevenBClass)
{
    for (const auto &m : {falcon_7b(), baichuan2_7b(), qwen_7b()}) {
        EXPECT_GT(billions(m.numParams()), 5.5) << m.name;
        EXPECT_LT(billions(m.numParams()), 9.5) << m.name;
    }
}

TEST(ModelConfig, HeadDimConsistent)
{
    const ModelConfig m = llama2_7b();
    EXPECT_EQ(m.headDim(), 128u);
    EXPECT_EQ(m.kvDim(), m.hidden); // MHA: kv width == hidden
}

TEST(ModelConfig, GqaShrinksKv)
{
    const ModelConfig m = llama2_70b();
    EXPECT_EQ(m.kvHeads, 8u);
    EXPECT_EQ(m.kvDim(), m.headDim() * 8);
    EXPECT_LT(m.kvDim(), m.hidden);
}

TEST(ModelConfig, MqaSingleKvHead)
{
    const ModelConfig m = falcon_7b();
    EXPECT_EQ(m.kvHeads, 1u);
    EXPECT_EQ(m.kvDim(), m.headDim());
}

TEST(ModelConfig, WeightBytesScaleWithDtype)
{
    const ModelConfig m = llama2_7b();
    EXPECT_DOUBLE_EQ(m.weightBytes(hw::Dtype::Fp32),
                     2.0 * m.weightBytes(hw::Dtype::Bf16));
    EXPECT_DOUBLE_EQ(m.weightBytes(hw::Dtype::Bf16),
                     2.0 * m.weightBytes(hw::Dtype::Int8));
}

TEST(ModelConfig, KvBytesPerTokenMatchesFormula)
{
    const ModelConfig m = llama2_7b();
    // 2 (K+V) x layers x kvDim x 2 bytes (bf16).
    EXPECT_DOUBLE_EQ(m.kvBytesPerToken(hw::Dtype::Bf16),
                     2.0 * 32 * 4096 * 2.0);
    // Weight-only int8 keeps KV in bf16.
    EXPECT_DOUBLE_EQ(m.kvBytesPerToken(hw::Dtype::Int8),
                     m.kvBytesPerToken(hw::Dtype::Bf16));
    // fp32 doubles it.
    EXPECT_DOUBLE_EQ(m.kvBytesPerToken(hw::Dtype::Fp32),
                     2.0 * m.kvBytesPerToken(hw::Dtype::Bf16));
}

TEST(ModelConfig, SeventyBKvPerTokenSmallerThanThirteenB)
{
    // GQA: 70B has *less* KV per token than 13B despite more layers.
    EXPECT_LT(llama2_70b().kvBytesPerToken(hw::Dtype::Bf16),
              llama2_13b().kvBytesPerToken(hw::Dtype::Bf16));
}

TEST(ModelConfig, MatmulParamsExcludeEmbeddings)
{
    const ModelConfig m = llama2_7b();
    EXPECT_LT(m.matmulParams(), m.numParams());
    // But include the LM head.
    EXPECT_GT(m.matmulParams(),
              m.layers * (m.attnParamsPerLayer() +
                          m.mlpParamsPerLayer()));
}

TEST(ModelConfig, GatedMlpHasThreeMatrices)
{
    ModelConfig gated = llama2_7b();
    ModelConfig plain = gated;
    plain.gatedMlp = false;
    EXPECT_DOUBLE_EQ(
        static_cast<double>(gated.mlpParamsPerLayer()) /
            static_cast<double>(plain.mlpParamsPerLayer()),
        1.5);
}
