file(REMOVE_RECURSE
  "CMakeFiles/cllm_llm.dir/collective.cc.o"
  "CMakeFiles/cllm_llm.dir/collective.cc.o.d"
  "CMakeFiles/cllm_llm.dir/framework.cc.o"
  "CMakeFiles/cllm_llm.dir/framework.cc.o.d"
  "CMakeFiles/cllm_llm.dir/kernels.cc.o"
  "CMakeFiles/cllm_llm.dir/kernels.cc.o.d"
  "CMakeFiles/cllm_llm.dir/model_config.cc.o"
  "CMakeFiles/cllm_llm.dir/model_config.cc.o.d"
  "CMakeFiles/cllm_llm.dir/ops.cc.o"
  "CMakeFiles/cllm_llm.dir/ops.cc.o.d"
  "CMakeFiles/cllm_llm.dir/perf_cluster.cc.o"
  "CMakeFiles/cllm_llm.dir/perf_cluster.cc.o.d"
  "CMakeFiles/cllm_llm.dir/perf_cpu.cc.o"
  "CMakeFiles/cllm_llm.dir/perf_cpu.cc.o.d"
  "CMakeFiles/cllm_llm.dir/perf_gpu.cc.o"
  "CMakeFiles/cllm_llm.dir/perf_gpu.cc.o.d"
  "CMakeFiles/cllm_llm.dir/runtime.cc.o"
  "CMakeFiles/cllm_llm.dir/runtime.cc.o.d"
  "CMakeFiles/cllm_llm.dir/tensor.cc.o"
  "CMakeFiles/cllm_llm.dir/tensor.cc.o.d"
  "CMakeFiles/cllm_llm.dir/tokenizer.cc.o"
  "CMakeFiles/cllm_llm.dir/tokenizer.cc.o.d"
  "libcllm_llm.a"
  "libcllm_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
