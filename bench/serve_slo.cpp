/**
 * @file
 * Serving extension: online SLO behaviour of confidential deployments
 * — an operational reading of Insight 11. Replays a Poisson trace
 * against CPU (bare/TDX) and GPU (raw/cGPU) deployments under static
 * and continuous batching, reporting TTFT/TPOT percentiles, SLO
 * attainment (200 ms/token, the paper's reading-speed bar), and
 * sustained tokens/s.
 *
 * With `--faults [seed]`, instead runs the resilience experiment: a
 * seeded fault schedule (attestation failures, enclave restarts, EPC
 * paging storms, KV exhaustion) is injected into a TDX deployment
 * under a retry/timeout/shedding policy, reporting availability,
 * retries, sheds, and downtime, plus the JSON event timeline.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.hh"
#include "fault/schedule.hh"
#include "obs/chrome_export.hh"
#include "obs/trace.hh"
#include "serve/serving.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;
using bench::serveDeployParams;
using bench::serveSeedWorkload;
using bench::sharedBackend;

namespace {

void
usage(std::ostream &os)
{
    os << "usage: serve_slo [--faults [seed]] [--kv-sweep] "
          "[--trace [path]] [--metrics-out path]\n\n"
          "  --faults [seed]     run the resilience experiment "
          "(seeded fault schedule\n"
          "                      against a TDX deployment) instead of "
          "the SLO sweep;\n"
          "                      seed defaults to 1\n"
          "  --kv-sweep          run the paged-vs-reserved KV "
          "discipline sweep (fixed\n"
          "                      pool sizes; recompute and "
          "swap-to-EPC preemption)\n"
       << bench::obsUsage();
}

/** Export the recorded trace and report where it went. */
void
finishTrace(const obs::Tracer &tracer, const bench::ObsOptions &opt)
{
    const std::string out =
        obs::traceOutputPath(opt.tracePath, "serve_slo.trace.json");
    obs::writeChromeTraceFile(out, tracer, &obs::Registry::global());
    std::cout << "wrote trace: " << out << " ("
              << tracer.simEvents().size() << " events)\n";
}

int
runFaultMode(std::uint64_t fault_seed, const bench::ObsOptions &opt)
{
    std::cout << "=== Serving under faults: resilience of a TDX "
                 "deployment ===\n";
    std::cout << "fault seed " << fault_seed
              << "; attestation failures, enclave restarts, EPC "
                 "storms, KV exhaustion\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    const WorkloadConfig load = serveSeedWorkload();

    fault::FaultScheduleConfig fs;
    fs.seed = fault_seed;
    fs.horizon = 700.0;
    fs.attestFail = {1.0 / 120.0, 4.0, 0.0};
    fs.enclaveRestart = {1.0 / 250.0, 0.0, 0.0};
    fs.epcStorm = {1.0 / 90.0, 10.0,
                   fault::epcStormSlowdown(6ULL << 30, 4ULL << 30,
                                           0.5)};
    fs.kvExhaustion = {1.0 / 150.0, 15.0, 0.5};

    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = 4096;
    cfg.kvBlockTokens = 16;
    cfg.faults = fault::FaultSchedule::generate(fs);
    cfg.weightBytes = model.weightBytes(hw::Dtype::Bf16);
    cfg.resilience.requestTimeout = 120.0;
    cfg.resilience.maxRetries = 3;
    cfg.resilience.retryBackoff = 0.5;
    cfg.resilience.shedOnKvPressure = true;
    cfg.resilience.shedThreshold = 0.95;
    cfg.resilience.degradedMaxBatch = 8;

    ServerConfig baseline = cfg;
    baseline.faults = {};

    // Lane 0 = fault-free baseline, lane 1 = faulty run, so both
    // request timelines land side by side in the viewer.
    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    tracer.laneName(0, "TDX fault-free");
    tracer.laneName(1, "TDX + faults");

    Table t({"run", "avail", "tok/s", "TTFT p95 [s]", "retries",
             "shed", "timeout", "restarts", "downtime [s]"});
    ServeMetrics faulty;
    for (bool with_faults : {false, true}) {
        ServerConfig run_cfg = with_faults ? cfg : baseline;
        if (opt.trace) {
            run_cfg.tracer = &tracer;
            run_cfg.traceLane = with_faults ? 1 : 0;
        }
        Server server(
            makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()), model,
                             deploy),
            run_cfg);
        const ServeMetrics m = server.run(generateWorkload(load));
        if (with_faults)
            faulty = m;
        t.addRow({with_faults ? "TDX + faults" : "TDX fault-free",
                  fmtPct(100.0 * m.availability),
                  fmt(m.tokensPerSecond), fmt(m.ttft.p95, 2),
                  fmtInt(m.retries), fmtInt(m.shed),
                  fmtInt(m.timedOut), fmtInt(m.restarts),
                  fmt(m.faultDowntime, 2)});
    }
    t.print(std::cout);

    std::cout << "\nfault timeline (JSON):\n";
    JsonWriter json(std::cout);
    writeMetrics(json, faulty);
    std::cout << "\n";

    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

int
runKvSweepMode(const bench::ObsOptions &opt)
{
    std::cout << "=== Paged vs reserved KV: batch density at fixed "
                 "enclave memory ===\n";
    std::cout << "TDX deployment, Llama2-7B bf16; reserved pins "
                 "inLen+outLen blocks at admission,\n"
                 "paged admits by free-block headroom and preempts "
                 "(recompute or swap to EPC)\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    const WorkloadConfig load = serveSeedWorkload();

    struct Variant
    {
        const char *name;
        KvMode mode;
        KvPreemptPolicy preempt;
    };
    const Variant variants[] = {
        {"reserved", KvMode::Reserved, KvPreemptPolicy::Recompute},
        {"paged/recompute", KvMode::Paged,
         KvPreemptPolicy::Recompute},
        {"paged/swap-epc", KvMode::Paged, KvPreemptPolicy::SwapToEpc},
    };

    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    std::uint32_t lane = 0;

    for (std::uint64_t blocks : {768ULL, 1280ULL, 2560ULL}) {
        std::cout << "--- KV pool: " << blocks << " blocks x 16 "
                  << "tokens ---\n";
        Table t({"discipline", "completed", "tok/s", "TTFT p95 [s]",
                 "peak batch", "KV mean", "KV peak", "preempts",
                 "swap [s]"});
        for (const Variant &v : variants) {
            ServerConfig cfg;
            cfg.policy = BatchPolicy::Continuous;
            cfg.kvBlocks = blocks;
            cfg.kvBlockTokens = 16;
            cfg.kvMode = v.mode;
            cfg.paged.preempt = v.preempt;
            cfg.paged.kvBytesPerToken =
                model.kvBytesPerToken(hw::Dtype::Bf16);
            if (opt.trace) {
                cfg.tracer = &tracer;
                cfg.traceLane = lane;
                tracer.laneName(lane,
                                std::to_string(blocks) + " blk / " +
                                    v.name);
            }
            ++lane;
            Server server(
                makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()),
                                 model, deploy),
                cfg);
            const ServeMetrics m = server.run(generateWorkload(load));
            t.addRow({v.name, fmtInt(m.completed),
                      fmt(m.tokensPerSecond), fmt(m.ttft.p95, 2),
                      fmtInt(static_cast<std::size_t>(
                          m.peakBatchOccupancy)),
                      fmtPct(100.0 * m.kvUtilizationMean),
                      fmtPct(100.0 * m.kvUtilizationPeak),
                      fmtInt(m.kvPreemptions),
                      fmt(m.kvSwapSeconds, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

int
runSloMode(const bench::ObsOptions &opt)
{
    std::cout << "=== Serving extension: SLO attainment under TEEs "
                 "===\n";
    std::cout << "Llama2-7B bf16; Poisson arrivals; TTFT SLO 2 s, "
                 "TPOT SLO 200 ms/token\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    const WorkloadConfig load = serveSeedWorkload();

    struct Deployment
    {
        std::string name;
        std::unique_ptr<StepModel> step;
    };
    std::vector<Deployment> deployments;
    deployments.push_back(
        {"CPU bare", makeCpuStepModel(cpu, sharedBackend(tee::makeBareMetal()),
                                      model, deploy)});
    deployments.push_back(
        {"CPU TDX", makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()), model,
                                     deploy)});
    deployments.push_back(
        {"GPU raw", makeGpuStepModel(hw::h100Nvl(), false, model,
                                     hw::Dtype::Bf16)});
    deployments.push_back(
        {"cGPU", makeGpuStepModel(hw::h100Nvl(), true, model,
                                  hw::Dtype::Bf16)});

    // One trace lane per (policy, deployment) run.
    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    std::uint32_t lane = 0;

    for (BatchPolicy policy :
         {BatchPolicy::Continuous, BatchPolicy::Static}) {
        std::cout << "--- " << batchPolicyName(policy)
                  << " batching ---\n";
        Table t({"deployment", "tok/s", "TTFT p50 [s]", "TTFT p95 [s]",
                 "TPOT p95 [ms]", "SLO attainment", "avg batch"});
        for (auto &d : deployments) {
            ServerConfig cfg;
            cfg.policy = policy;
            if (opt.trace) {
                cfg.tracer = &tracer;
                cfg.traceLane = lane;
                tracer.laneName(lane, std::string(
                                          batchPolicyName(policy)) +
                                          " / " + d.name);
            }
            ++lane;
            // Re-create the step models per run is unnecessary; Server
            // borrows, so build a fresh server around the same model.
            Server server(
                d.name.rfind("CPU", 0) == 0
                    ? makeCpuStepModel(
                          cpu,
                          sharedBackend(d.name == "CPU TDX"
                                     ? tee::makeTdx()
                                     : tee::makeBareMetal()),
                          model, deploy)
                    : makeGpuStepModel(hw::h100Nvl(), d.name == "cGPU",
                                       model, hw::Dtype::Bf16),
                cfg);
            const ServeMetrics m = server.run(generateWorkload(load));
            t.addRow({d.name, fmt(m.tokensPerSecond),
                      fmt(m.ttft.p50, 2), fmt(m.ttft.p95, 2),
                      fmt(1e3 * m.tpot.p95, 1),
                      fmtPct(100.0 * m.sloAttainment),
                      fmt(m.meanBatchOccupancy, 1)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsOptions opt;
    bool fault_mode = false;
    bool kv_sweep = false;
    std::uint64_t fault_seed = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strcmp(argv[i], "--faults") == 0) {
            fault_mode = true;
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                fault_seed = std::strtoull(argv[++i], nullptr, 10);
            continue;
        }
        if (std::strcmp(argv[i], "--kv-sweep") == 0) {
            kv_sweep = true;
            continue;
        }
        if (bench::parseObsArg(opt, argc, argv, i))
            continue;
        std::cerr << "serve_slo: unknown argument '" << argv[i]
                  << "'\n";
        usage(std::cerr);
        return 2;
    }
    if (fault_mode)
        return runFaultMode(fault_seed, opt);
    if (kv_sweep)
        return runKvSweepMode(opt);
    return runSloMode(opt);
}
