file(REMOVE_RECURSE
  "CMakeFiles/test_reranker.dir/test_reranker.cc.o"
  "CMakeFiles/test_reranker.dir/test_reranker.cc.o.d"
  "test_reranker"
  "test_reranker.pdb"
  "test_reranker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reranker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
