/**
 * @file
 * Tests for the functional set-associative cache simulator, including
 * the checks that ground the analytic timing model's assumptions.
 */

#include <gtest/gtest.h>

#include "mem/cache_sim.hh"
#include "util/rng.hh"
#include "util/units.hh"

using namespace cllm;
using namespace cllm::mem;

TEST(CacheSim, ColdMissThenHit)
{
    CacheSim c;
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103f)); // same 64B line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheSim, GeometryDerived)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    cfg.lineBytes = 64;
    CacheSim c(cfg);
    EXPECT_EQ(c.sets(), 32u * 1024 / 64 / 8);
}

TEST(CacheSim, LruEvictionWithinSet)
{
    // 2-way cache: two lines mapping to the same set survive, the
    // third evicts the least recently used.
    CacheConfig cfg;
    cfg.sizeBytes = 2 * 64 * 4; // 4 sets, 2 ways
    cfg.ways = 2;
    CacheSim c(cfg);
    const std::uint64_t set_stride = c.sets() * 64;

    c.access(0);                  // miss
    c.access(set_stride);         // miss, same set
    c.access(0);                  // hit, refresh 0
    c.access(2 * set_stride);     // miss, evicts set_stride
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(set_stride));
}

TEST(CacheSim, ResidentWorkingSetHitsAfterWarmup)
{
    CacheConfig cfg;
    cfg.sizeBytes = 256 * 1024;
    CacheSim c(cfg);
    const std::uint64_t ws = 128 * 1024; // half the cache
    for (int pass = 0; pass < 4; ++pass)
        c.accessRange(0, ws);
    // Only the first pass misses.
    EXPECT_EQ(c.misses(), ws / 64);
    EXPECT_EQ(c.hits(), 3 * ws / 64);
}

TEST(CacheSim, StreamingBeyondCapacityAlwaysMisses)
{
    // The LLC assumption behind the timing model: weights larger than
    // the cache stream from DRAM every pass.
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    CacheSim c(cfg);
    for (int pass = 0; pass < 3; ++pass)
        c.accessRange(0, 1 * MiB);
    EXPECT_GT(c.missRatio(), 0.99);
}

TEST(CacheSim, RandomAccessMissRatioTracksCoverage)
{
    // Random accesses over a working set W with cache C hit with
    // probability ~C/W in steady state.
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.ways = 16;
    CacheSim c(cfg);
    Rng rng(3);
    const std::uint64_t ws = 256 * 1024; // 4x the cache
    for (int i = 0; i < 200000; ++i)
        c.access(rng.uniformInt(0, ws - 1));
    EXPECT_NEAR(1.0 - c.missRatio(), 0.25, 0.05);
}

TEST(CacheSim, MeeCounterCacheHitRateAssumptionHolds)
{
    // MeeCostModel assumes ~85% counter-cache hits for LLM-like
    // traffic: mostly-sequential weight streaming where 8 consecutive
    // lines share a counter-tree node. Model counters as one line per
    // 8 data lines and replay a streaming trace against a 64 KiB
    // on-chip counter cache.
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    CacheSim counters(cfg);
    // Stream 64 MiB of protected data -> counter address = line/8.
    const std::uint64_t data_lines = 64ULL * MiB / 64;
    for (std::uint64_t l = 0; l < data_lines; ++l)
        counters.access(l / 8 * 64);
    // 7 of 8 accesses hit the just-fetched counter line.
    EXPECT_GT(1.0 - counters.missRatio(), 0.85);
}

TEST(CacheSim, ResetClears)
{
    CacheSim c;
    c.access(0);
    c.access(0);
    c.reset();
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    EXPECT_FALSE(c.access(0)); // cold again
}

TEST(CacheSimDeath, BadGeometryFatal)
{
    CacheConfig cfg;
    cfg.lineBytes = 48; // not a power of two
    EXPECT_DEATH(CacheSim{cfg}, "power of two");
    CacheConfig cfg2;
    cfg2.ways = 0;
    EXPECT_DEATH(CacheSim{cfg2}, "ways");
    CacheConfig cfg3;
    cfg3.sizeBytes = 64 * 3; // 3 lines, 8 ways
    EXPECT_DEATH(CacheSim{cfg3}, "whole number");
}
