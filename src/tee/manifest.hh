/**
 * @file
 * Gramine manifest handling (Figure 2 of the paper). Manifests are
 * TOML-flavoured key/value files describing the enclave: entrypoint,
 * enclave size, thread count, trusted files (integrity-checked via
 * SHA-256) and encrypted files (confidentiality via the FS shield).
 * This module parses the subset Gramine's LLM deployments use,
 * validates it, and folds it into the enclave measurement so that a
 * manifest change changes MRENCLAVE.
 */

#ifndef CLLM_TEE_MANIFEST_HH
#define CLLM_TEE_MANIFEST_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tee/attest.hh"

namespace cllm::tee {

/** A trusted-file entry: path plus expected SHA-256. */
struct TrustedFile
{
    std::string uri;
    std::string sha256Hex; //!< empty until computed/pinned
};

/** Parsed manifest contents. */
struct Manifest
{
    std::string entrypoint;              //!< libos.entrypoint
    std::string logLevel = "error";      //!< loader.log_level
    std::uint64_t enclaveSizeBytes = 0;  //!< sgx.enclave_size
    unsigned maxThreads = 0;             //!< sgx.max_threads
    bool edmm = false;                   //!< sgx.edmm_enable
    std::vector<TrustedFile> trustedFiles;
    std::vector<std::string> encryptedFiles;
    std::string keyProvider;             //!< fs.insecure__keys or KDS
    std::map<std::string, std::string> env;

    /** Fold the manifest into an enclave measurement. */
    void extendMeasurement(MeasurementBuilder &builder) const;
};

/** Outcome of parsing/validation. */
struct ManifestResult
{
    bool ok = false;
    std::string error;       //!< first problem found, when !ok
    Manifest manifest;       //!< valid only when ok
};

/**
 * Parse a Gramine-style manifest text. Unknown keys are preserved as
 * env-style entries when under `loader.env`, otherwise rejected only
 * if `strict` is set.
 */
ManifestResult parseManifest(const std::string &text, bool strict = false);

/**
 * Validate semantic constraints: entrypoint present, enclave size a
 * power of two and >= 1 GiB for LLM workloads, thread count sized for
 * the runtime, trusted files carrying hashes.
 */
ManifestResult validateManifest(const Manifest &m);

/** Render back to manifest text (normalized ordering). */
std::string renderManifest(const Manifest &m);

/**
 * Example manifest for an IPEX Llama2 deployment, close to the
 * paper's Figure 2 excerpt.
 */
std::string exampleLlamaManifest();

} // namespace cllm::tee

#endif // CLLM_TEE_MANIFEST_HH
