/**
 * @file
 * Tests for the TEE backend tax models: each backend's documented
 * behaviours (Insights 5-7) must appear in its ExecTax.
 */

#include <gtest/gtest.h>

#include "hw/cpu.hh"
#include "tee/backend.hh"
#include "util/units.hh"

using namespace cllm;
using namespace cllm::tee;

namespace {

TeeRequest
llamaRequest(unsigned sockets = 1)
{
    TeeRequest r;
    r.sockets = sockets;
    r.workingSetBytes = 28ULL * GiB;
    return r;
}

} // namespace

TEST(BareMetal, IsNeutral)
{
    const auto be = makeBareMetal();
    const ExecTax t = be->tax(hw::emr1(), llamaRequest());
    EXPECT_EQ(t.computeFactor, 1.0);
    EXPECT_EQ(t.encBwFactor, 1.0);
    EXPECT_EQ(t.extraSecPerByte, 0.0);
    EXPECT_EQ(t.perOpFixedSec, 0.0);
    EXPECT_EQ(t.xlate, mem::TranslationMode::Native);
    EXPECT_EQ(t.placement, mem::NumaPlacement::Local);
    EXPECT_FALSE(t.upiEncrypted);
    EXPECT_EQ(be->name(), "bare");
}

TEST(BareMetal, HonoursPageAndBindingRequests)
{
    const auto be = makeBareMetal();
    TeeRequest r = llamaRequest();
    r.requestedPage = mem::PageSize::Page2M;
    r.numaBindRequested = false;
    const ExecTax t = be->tax(hw::emr1(), r);
    EXPECT_EQ(t.effectivePage, mem::PageSize::Page2M);
    EXPECT_EQ(t.placement, mem::NumaPlacement::Unbound);
}

TEST(Vm, NestedTranslationAndVirtTax)
{
    const auto be = makeVm();
    const ExecTax t = be->tax(hw::emr1(), llamaRequest());
    EXPECT_EQ(t.xlate, mem::TranslationMode::Nested);
    EXPECT_LT(t.computeFactor, 1.0);
    EXPECT_GT(t.computeFactor, 0.95);
    EXPECT_EQ(t.encBwFactor, 1.0); // no encryption in a plain VM
    EXPECT_EQ(be->name(), "VM");
}

TEST(Vm, HugepagePolicySelectsBacking)
{
    VmConfig th;
    th.hugepages1G = false;
    EXPECT_EQ(makeVm(th)->tax(hw::emr1(), llamaRequest()).effectivePage,
              mem::PageSize::Page2M);
    EXPECT_EQ(makeVm()->tax(hw::emr1(), llamaRequest()).effectivePage,
              mem::PageSize::Page1G);
    EXPECT_EQ(makeVm(th)->name(), "VM TH");
}

TEST(Vm, GuestCannotExceedHostBacking)
{
    TeeRequest r = llamaRequest();
    r.requestedPage = mem::PageSize::Page4K;
    EXPECT_EQ(makeVm()->tax(hw::emr1(), r).effectivePage,
              mem::PageSize::Page4K);
}

TEST(Vm, UnboundConfigLosesPlacement)
{
    VmConfig nb;
    nb.numaBound = false;
    const ExecTax t = makeVm(nb)->tax(hw::emr1(), llamaRequest(2));
    EXPECT_EQ(t.placement, mem::NumaPlacement::Unbound);
    EXPECT_EQ(makeVm(nb)->name(), "VM NB");
}

TEST(Tdx, ForcesTwoMegPages)
{
    // Insight 7: TDX ignores reserved 1 GiB pages.
    TeeRequest r = llamaRequest();
    r.requestedPage = mem::PageSize::Page1G;
    const ExecTax t = makeTdx()->tax(hw::emr1(), r);
    EXPECT_EQ(t.effectivePage, mem::PageSize::Page2M);
}

TEST(Tdx, IgnoresNumaBindingsOnTwoSockets)
{
    // Insight 6: bindings ignored; first-touch leaves traffic striped
    // across the sockets.
    const ExecTax t = makeTdx()->tax(hw::emr1(), llamaRequest(2));
    EXPECT_EQ(t.placement, mem::NumaPlacement::Striped);
    EXPECT_TRUE(t.upiEncrypted);
}

TEST(Tdx, SingleSocketStaysLocal)
{
    const ExecTax t = makeTdx()->tax(hw::emr1(), llamaRequest(1));
    EXPECT_EQ(t.placement, mem::NumaPlacement::Local);
}

TEST(Tdx, MemoryEncryptionTaxPresent)
{
    const ExecTax t = makeTdx()->tax(hw::emr1(), llamaRequest());
    EXPECT_LT(t.encBwFactor, 1.0);
    EXPECT_GT(t.encBwFactor, 0.90);
    EXPECT_EQ(t.xlate, mem::TranslationMode::NestedTdx);
}

TEST(Tdx, SncMultipliesPenalty)
{
    TeeRequest snc = llamaRequest();
    snc.sncEnabled = true;
    const double with_snc =
        makeTdx()->tax(hw::emr1(), snc).encBwFactor;
    const double without =
        makeTdx()->tax(hw::emr1(), llamaRequest()).encBwFactor;
    EXPECT_LT(with_snc, 0.8 * without);
}

TEST(Tdx, NoiseAndOutliersConfigured)
{
    const ExecTax t = makeTdx()->tax(hw::emr1(), llamaRequest());
    EXPECT_GT(t.noiseSigma, 0.0);
    EXPECT_NEAR(t.outlierProb, 0.0064, 1e-6); // paper's ~0.64%
    EXPECT_GT(t.outlierScale, 1.0);
}

TEST(Sgx, NativeTranslationUnifiedNuma)
{
    const ExecTax t1 = makeSgx()->tax(hw::emr1(), llamaRequest(1));
    EXPECT_EQ(t1.xlate, mem::TranslationMode::Native);
    EXPECT_EQ(t1.placement, mem::NumaPlacement::Local);

    const ExecTax t2 = makeSgx()->tax(hw::emr1(), llamaRequest(2));
    EXPECT_EQ(t2.placement, mem::NumaPlacement::SingleNode);
}

TEST(Sgx, MeeTaxAndTransitions)
{
    const ExecTax t = makeSgx()->tax(hw::emr1(), llamaRequest());
    EXPECT_LT(t.encBwFactor, 1.0);
    EXPECT_GT(t.perTokenFixedSec, 0.0); // enclave exits
}

TEST(Sgx, EpcPagingKicksInBeyondEpc)
{
    TeeRequest big = llamaRequest();
    big.workingSetBytes = 300ULL * GiB; // above one socket's 256 GiB
    const ExecTax fits = makeSgx()->tax(hw::emr1(), llamaRequest());
    const ExecTax paged = makeSgx()->tax(hw::emr1(), big);
    EXPECT_EQ(fits.extraSecPerByte, 0.0);
    EXPECT_GT(paged.extraSecPerByte, 0.0);
}

TEST(Sgx, LargerConfiguredEpcAvoidsPaging)
{
    SgxConfig cfg;
    cfg.epcBytes = 512ULL << 30;
    TeeRequest big = llamaRequest();
    big.workingSetBytes = 100ULL * GiB;
    hw::CpuSpec cpu = hw::emr1();
    cpu.epcBytesPerSocket = 512ULL << 30;
    EXPECT_EQ(makeSgx(cfg)->tax(cpu, big).extraSecPerByte, 0.0);
}

TEST(Security, ProfilesMatchTableOne)
{
    const SecurityProfile sgx = makeSgx()->security();
    const SecurityProfile tdx = makeTdx()->security();
    const SecurityProfile gpu = cgpuSecurity();

    EXPECT_TRUE(sgx.memoryEncrypted);
    EXPECT_TRUE(tdx.memoryEncrypted);
    EXPECT_FALSE(gpu.memoryEncrypted); // H100 HBM in the clear

    EXPECT_TRUE(sgx.interconnectProtected);
    EXPECT_FALSE(gpu.interconnectProtected); // NVLINK unprotected

    EXPECT_TRUE(sgx.protectsFromHost);
    EXPECT_TRUE(tdx.protectsFromHost);
    EXPECT_TRUE(gpu.protectsFromHost);

    // Trust boundary ordering: SGX < TDX (Insight 5's trade-off).
    EXPECT_NE(sgx.trustBoundary, tdx.trustBoundary);
}

TEST(Cgpu, TaxMatchesSpec)
{
    const hw::GpuSpec g = hw::h100Nvl();
    const GpuTax t = cgpuTax(g);
    EXPECT_NEAR(t.launchExtraSec, g.ccLaunchExtraUs * 1e-6, 1e-12);
    EXPECT_EQ(t.hostLinkBwBytes, g.ccBounceBwBytes);
    EXPECT_EQ(t.hbmBwFactor, 1.0); // unencrypted HBM -> no tax
}

TEST(Cgpu, EncryptedHbmWouldCost)
{
    hw::GpuSpec g = hw::h100Nvl();
    g.hbmEncrypted = true; // B100-style
    EXPECT_LT(cgpuTax(g).hbmBwFactor, 1.0);
}
