# Empty dependencies file for fig04_single_socket.
# This may be replaced when dependencies are built.
