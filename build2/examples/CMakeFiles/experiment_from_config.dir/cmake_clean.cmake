file(REMOVE_RECURSE
  "CMakeFiles/experiment_from_config.dir/experiment_from_config.cpp.o"
  "CMakeFiles/experiment_from_config.dir/experiment_from_config.cpp.o.d"
  "experiment_from_config"
  "experiment_from_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_from_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
