/**
 * @file
 * AES-128 block cipher (FIPS 197), portable table-free implementation.
 * Used as the primitive beneath the CTR stream cipher that models TEE
 * memory encryption (TME-MK / MEE) and the Gramine protected-file
 * shield. Verified against the FIPS 197 appendix vectors in tests.
 *
 * Note: this implementation favours clarity over side-channel
 * resistance; it protects simulated memory, not real secrets.
 */

#ifndef CLLM_CRYPTO_AES_HH
#define CLLM_CRYPTO_AES_HH

#include <array>
#include <cstdint>

namespace cllm::crypto {

/** A 128-bit AES key. */
using AesKey = std::array<std::uint8_t, 16>;

/** A 128-bit AES block. */
using AesBlock = std::array<std::uint8_t, 16>;

/**
 * AES-128 with a precomputed key schedule.
 */
class Aes128
{
  public:
    /** Expand the key schedule from a 128-bit key. */
    explicit Aes128(const AesKey &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(AesBlock &block) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(AesBlock &block) const;

  private:
    // 11 round keys of 16 bytes each.
    std::uint8_t roundKeys_[176];
};

} // namespace cllm::crypto

#endif // CLLM_CRYPTO_AES_HH
