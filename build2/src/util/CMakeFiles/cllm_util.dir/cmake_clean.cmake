file(REMOVE_RECURSE
  "CMakeFiles/cllm_util.dir/config.cc.o"
  "CMakeFiles/cllm_util.dir/config.cc.o.d"
  "CMakeFiles/cllm_util.dir/json.cc.o"
  "CMakeFiles/cllm_util.dir/json.cc.o.d"
  "CMakeFiles/cllm_util.dir/logging.cc.o"
  "CMakeFiles/cllm_util.dir/logging.cc.o.d"
  "CMakeFiles/cllm_util.dir/rng.cc.o"
  "CMakeFiles/cllm_util.dir/rng.cc.o.d"
  "CMakeFiles/cllm_util.dir/stats.cc.o"
  "CMakeFiles/cllm_util.dir/stats.cc.o.d"
  "CMakeFiles/cllm_util.dir/table.cc.o"
  "CMakeFiles/cllm_util.dir/table.cc.o.d"
  "libcllm_util.a"
  "libcllm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
