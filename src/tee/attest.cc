#include "tee/attest.hh"

#include <cstring>

namespace cllm::tee {

void
MeasurementBuilder::extend(const std::string &label,
                           const std::vector<std::uint8_t> &data)
{
    // Length-prefixed framing so ("ab","c") != ("a","bc").
    const std::uint64_t label_len = label.size();
    const std::uint64_t data_len = data.size();
    hasher_.update(&label_len, sizeof(label_len));
    hasher_.update(label);
    hasher_.update(&data_len, sizeof(data_len));
    hasher_.update(data.data(), data.size());
}

void
MeasurementBuilder::extend(const std::string &label, const std::string &data)
{
    extend(label, std::vector<std::uint8_t>(data.begin(), data.end()));
}

Measurement
MeasurementBuilder::finish()
{
    return Measurement{hasher_.finish()};
}

QuotingEnclave::QuotingEnclave(const crypto::Digest256 &hardware_key,
                               std::uint64_t security_version)
    : hwKey_(hardware_key),
      verifKey_(crypto::deriveKey(hardware_key, "quote-verification")),
      securityVersion_(security_version)
{
}

crypto::Digest256
QuotingEnclave::signQuote(const Quote &q) const
{
    std::vector<std::uint8_t> buf;
    buf.insert(buf.end(), q.measurement.value.begin(),
               q.measurement.value.end());
    buf.insert(buf.end(), q.reportData.begin(), q.reportData.end());
    for (int i = 0; i < 8; ++i) {
        buf.push_back(
            static_cast<std::uint8_t>(q.securityVersion >> (56 - 8 * i)));
    }
    std::vector<std::uint8_t> key(verifKey_.begin(), verifKey_.end());
    return crypto::hmacSha256(key, buf.data(), buf.size());
}

Quote
QuotingEnclave::generateQuote(const Measurement &m,
                              const crypto::Digest256 &report_data) const
{
    Quote q;
    q.measurement = m;
    q.reportData = report_data;
    q.securityVersion = securityVersion_;
    q.signature = signQuote(q);
    return q;
}

crypto::Digest256
QuotingEnclave::sealingKey(const Measurement &m) const
{
    const crypto::Digest256 base = crypto::deriveKey(hwKey_, "sealing");
    std::vector<std::uint8_t> key(base.begin(), base.end());
    return crypto::hmacSha256(key, m.value.data(), m.value.size());
}

const char *
verifyStatusName(VerifyStatus s)
{
    switch (s) {
      case VerifyStatus::Ok:
        return "ok";
      case VerifyStatus::BadSignature:
        return "bad signature";
      case VerifyStatus::UnexpectedMeasurement:
        return "unexpected measurement";
      case VerifyStatus::StaleSecurityVersion:
        return "stale security version";
    }
    return "?";
}

QuoteVerifier::QuoteVerifier(const crypto::Digest256 &verification_key,
                             std::uint64_t min_security_version)
    : verifKey_(verification_key),
      minSecurityVersion_(min_security_version)
{
}

void
QuoteVerifier::allow(const Measurement &m)
{
    allowed_.push_back(m);
}

VerifyStatus
QuoteVerifier::verify(const Quote &quote) const
{
    // Recompute the signature with the shared verification key.
    std::vector<std::uint8_t> buf;
    buf.insert(buf.end(), quote.measurement.value.begin(),
               quote.measurement.value.end());
    buf.insert(buf.end(), quote.reportData.begin(), quote.reportData.end());
    for (int i = 0; i < 8; ++i) {
        buf.push_back(static_cast<std::uint8_t>(quote.securityVersion >>
                                                (56 - 8 * i)));
    }
    std::vector<std::uint8_t> key(verifKey_.begin(), verifKey_.end());
    const crypto::Digest256 expect =
        crypto::hmacSha256(key, buf.data(), buf.size());
    if (!crypto::digestEqual(expect, quote.signature))
        return VerifyStatus::BadSignature;

    if (quote.securityVersion < minSecurityVersion_)
        return VerifyStatus::StaleSecurityVersion;

    for (const auto &m : allowed_) {
        if (m == quote.measurement)
            return VerifyStatus::Ok;
    }
    return VerifyStatus::UnexpectedMeasurement;
}

} // namespace cllm::tee
