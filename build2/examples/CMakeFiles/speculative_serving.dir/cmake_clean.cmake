file(REMOVE_RECURSE
  "CMakeFiles/speculative_serving.dir/speculative_serving.cpp.o"
  "CMakeFiles/speculative_serving.dir/speculative_serving.cpp.o.d"
  "speculative_serving"
  "speculative_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
