/**
 * @file
 * The fault injector consumed by the serving loop: it answers, for a
 * simulation clock, "does an admission handshake fail right now?",
 * "how much slower is this decode step?", "how much of the KV pool is
 * usable?", and "did the enclave restart since I last asked?" — and
 * records a timeline of every event that actually influenced the run
 * (when it was first applied and how many requests it touched). The
 * timeline is part of the serving outcome, so the same seed and
 * schedule reproduce it bit-for-bit, and it exports to JSON for
 * downstream tooling.
 */

#ifndef CLLM_FAULT_INJECTOR_HH
#define CLLM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "fault/schedule.hh"

namespace cllm {
class JsonWriter;
}

namespace cllm::obs {
class Tracer;
}

namespace cllm::fault {

/** One schedule entry annotated with its observed impact. */
struct FaultRecord
{
    FaultEvent event{};
    double applied = -1.0; //!< clock of first impact (-1: never fired)
    unsigned affected = 0; //!< impacted requests / steps
};

/**
 * Stateful adapter between a FaultSchedule and a simulation loop.
 * All queries are deterministic functions of the schedule and the
 * query clock; the injector holds no randomness of its own.
 */
class FaultInjector
{
  public:
    /** An empty injector fires nothing. */
    FaultInjector() = default;

    explicit FaultInjector(const FaultSchedule &schedule);

    /** Whether any events are scheduled at all. */
    bool enabled() const { return !records_.empty(); }

    /**
     * Attach a tracer: the first time each scheduled event actually
     * impacts the run, an instant event with the fault kind and
     * magnitude lands on `lane` at the impact clock. Tracing never
     * feeds back into any query result. Null detaches.
     */
    void setTrace(obs::Tracer *tracer, std::uint32_t lane);

    /**
     * Step-time multiplier at clock `t`: the product of every active
     * EpcStorm window's magnitude (>= 1 when none is active). Each
     * slowed step counts toward the storm's `affected` tally.
     */
    double slowdown(double t);

    /**
     * Whether an admission handshake at clock `t` fails because an
     * AttestFail window is active. Each failed handshake counts
     * toward the window's `affected` tally.
     */
    bool attestationFails(double t);

    /**
     * Usable fraction of the KV pool at clock `t`: 1 minus the summed
     * magnitude of active KvExhaustion windows, clamped to [0, 1].
     */
    double kvCapacityFactor(double t);

    /**
     * Consume every EnclaveRestart event with time <= `t` that has
     * not fired yet; `inflight` requests lose their state per
     * restart. Returns the number of restarts crossed.
     */
    unsigned consumeRestarts(double t, unsigned inflight);

    /** Whether any windowed fault is active (degradation trigger). */
    bool anyWindowActive(double t) const;

    /**
     * Earliest end among windows active at clock `t`, or `t` itself
     * when none is active — the next instant a blocked admission
     * could make progress.
     */
    double nextWindowEnd(double t) const;

    /** Every scheduled event with its observed impact. */
    const std::vector<FaultRecord> &timeline() const
    {
        return records_;
    }

    /** Count of events that actually fired. */
    std::size_t firedCount() const;

  private:
    void touch(FaultRecord &r, double t, unsigned impact);

    std::vector<FaultRecord> records_;
    std::size_t nextRestart_ = 0;
    obs::Tracer *tracer_ = nullptr;
    std::uint32_t traceLane_ = 0;
};

/**
 * Export a fault timeline as a JSON array of event objects (kind,
 * scheduled time, duration, magnitude, applied time, affected count).
 */
void writeTimeline(JsonWriter &json,
                   const std::vector<FaultRecord> &timeline);

} // namespace cllm::fault

#endif // CLLM_FAULT_INJECTOR_HH
