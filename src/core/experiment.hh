/**
 * @file
 * The library's high-level public API: configure a (machine, execution
 * environment, model, run parameters) tuple, run the timing model, and
 * compare against a baseline — the loop every figure in the paper
 * executes. Downstream users who just want "what does TDX cost me for
 * this model at this batch size" start here.
 */

#ifndef CLLM_CORE_EXPERIMENT_HH
#define CLLM_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "cost/pricing.hh"
#include "hw/cpu.hh"
#include "hw/gpu.hh"
#include "llm/model_config.hh"
#include "llm/perf_cpu.hh"
#include "llm/perf_gpu.hh"
#include "tee/backend.hh"

namespace cllm::core {

/** The execution environments the paper evaluates. */
enum class Backend
{
    Bare,    //!< bare metal
    Vm,      //!< raw VM, 1 GiB hugepages, bound
    VmTh,    //!< raw VM, 2 MiB transparent hugepages
    VmNb,    //!< raw VM, hugepages but no NUMA binding
    Sgx,     //!< Gramine-SGX
    Tdx,     //!< TDX VM
};

/** Printable backend name. */
const char *backendName(Backend b);

/** Construct the TeeBackend model for an enum value. */
std::unique_ptr<tee::TeeBackend> makeBackend(Backend b);

/** A run outcome paired with its configuration labels. */
struct ExperimentResult
{
    std::string backend;
    llm::TimingResult timing;
};

/** Throughput/latency overhead of a run versus a baseline run. */
struct OverheadReport
{
    std::string name;
    std::string baseline;
    double tputOverheadPct = 0.0;    //!< decode throughput loss
    double latencyOverheadPct = 0.0; //!< mean token latency increase
    double e2eOverheadPct = 0.0;     //!< end-to-end throughput loss
};

/**
 * Facade over the CPU/GPU timing models.
 */
class Experiment
{
  public:
    /** Use default model configurations. */
    Experiment();

    /** Run on a CPU under a backend. */
    ExperimentResult runCpu(const hw::CpuSpec &cpu, Backend backend,
                            const llm::ModelConfig &model,
                            const llm::RunParams &params) const;

    /** Run on a GPU (confidential or raw). */
    ExperimentResult runGpu(const hw::GpuSpec &gpu,
                            const llm::ModelConfig &model,
                            const llm::GpuRunParams &params) const;

    /** Overheads of `result` relative to `baseline`. */
    static OverheadReport compare(const ExperimentResult &result,
                                  const ExperimentResult &baseline);

    /** $/1M tokens for a CPU run on a rented slice. */
    static double cpuCostPerMTokens(const ExperimentResult &r,
                                    const cost::CpuPricing &pricing,
                                    unsigned vcpus, double mem_gb);

    /** $/1M tokens for a GPU run. */
    static double gpuCostPerMTokens(const ExperimentResult &r,
                                    const cost::GpuPricing &pricing);

    const llm::CpuPerfModel &cpuModel() const { return cpuModel_; }
    const llm::GpuPerfModel &gpuModel() const { return gpuModel_; }

  private:
    llm::CpuPerfModel cpuModel_;
    llm::GpuPerfModel gpuModel_;
};

} // namespace cllm::core

#endif // CLLM_CORE_EXPERIMENT_HH
