/**
 * @file
 * Figure 12: vCPU scaling and cost of generating 1M tokens on EMR2
 * (bf16, 128 in/out, single socket) across batch sizes, against the
 * cGPU cost line. GCP-spot-style separable pricing with a fixed
 * 128 GB of memory, as in the paper. The paper: throughput plateaus
 * at ~32 cores; memory dominates small instances; CPU TEEs are up to
 * ~100% cheaper at batch 1, with parity around batch 128.
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 12", "vCPU scaling + $/1M tokens vs cGPU (EMR2)",
           "plateau ~32 cores; CPU TEEs up to 100% cheaper at batch "
           "1; parity ~batch 128");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const cost::CpuPricing cpu_price = cost::gcpSpotUsEast1();
    const cost::CpuPricing spr_price = cost::gcpSpotSprUsEast1();
    const cost::GpuPricing gpu_price = cost::cgpuH100();
    const double mem_gb = 128.0;

    for (unsigned batch : {1u, 16u, 64u, 128u}) {
        // The cGPU reference line for this batch.
        llm::GpuRunParams g;
        g.batch = batch;
        g.inLen = 128;
        g.outLen = 128;
        g.confidential = true;
        const auto gr = exp.runGpu(hw::h100Nvl(), model, g);
        const double gpu_usd =
            core::Experiment::gpuCostPerMTokens(gr, gpu_price);

        std::cout << "--- batch " << batch << " (cGPU line: $"
                  << fmt(gpu_usd, 3) << "/1M tok at "
                  << fmt(gr.timing.e2eTput) << " tok/s) ---\n";
        Table t({"vCPUs", "TDX tput [tok/s]", "TDX ovh",
                 "$/hr", "TDX $/1M tok", "vs cGPU", "bound"});
        for (unsigned cores : {8u, 16u, 24u, 32u, 48u, 60u}) {
            llm::RunParams p;
            p.batch = batch;
            p.inLen = 128;
            p.outLen = 128;
            p.sockets = 1;
            p.cores = cores;
            const auto bare =
                exp.runCpu(cpu, core::Backend::Bare, model, p);
            const auto tdx =
                exp.runCpu(cpu, core::Backend::Tdx, model, p);
            const double usd = core::Experiment::cpuCostPerMTokens(
                tdx, cpu_price, cores, mem_gb);
            t.addRow({std::to_string(cores),
                      fmt(tdx.timing.e2eTput),
                      fmtPct(core::Experiment::compare(tdx, bare)
                                 .tputOverheadPct),
                      fmt(cost::cpuInstanceHr(cpu_price, cores, mem_gb),
                          3),
                      fmt(usd, 3),
                      fmtPct(100.0 * (usd / gpu_usd - 1.0)),
                      tdx.timing.memoryBound ? "memory" : "compute"});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // The cheaper Sapphire Rapids alternative (Section V-D).
    std::cout << "SPR alternative at batch 16, 32 vCPUs: ";
    {
        const hw::CpuSpec spr = hw::spr();
        llm::RunParams p;
        p.batch = 16;
        p.inLen = 128;
        p.outLen = 128;
        p.sockets = 1;
        p.cores = 32;
        const auto r = exp.runCpu(spr, core::Backend::Tdx, model, p);
        std::cout << "$"
                  << fmt(core::Experiment::cpuCostPerMTokens(
                             r, spr_price, 32, mem_gb),
                         3)
                  << "/1M tok at " << fmt(r.timing.e2eTput)
                  << " tok/s\n";
    }
    return 0;
}
