/**
 * @file
 * Confidential inference session, end to end and functional: a client
 * attests the serving enclave, completes an attested key exchange
 * (the DH public value is bound into the quote), and exchanges an
 * encrypted prompt and response with a real TinyLlama model running
 * "inside" the enclave — the protocol behind the paper's healthcare /
 * finance deployment scenarios.
 */

#include <iostream>

#include "crypto/sha256.hh"
#include "llm/runtime.hh"
#include "llm/tokenizer.hh"
#include "tee/session.hh"

using namespace cllm;

int
main()
{
    // ---- Platform + enclave setup (server side) -----------------------
    const crypto::Digest256 hw_key =
        crypto::sha256(std::string("hospital-platform-key"));
    tee::QuotingEnclave platform(hw_key, /*security_version=*/3);

    tee::MeasurementBuilder mb;
    mb.extend("binary", std::string("inference-runtime-v2"));
    const tee::Measurement enclave = mb.finish();

    tee::DhKeyPair server_keys(0xfeedULL);
    const tee::ServerHello hello =
        tee::makeServerHello(platform, enclave, server_keys);
    std::cout << "server: quote generated, DH public bound to report "
                 "data\n";

    // ---- Client: verify and complete the handshake --------------------
    tee::QuoteVerifier verifier(platform.verificationKey(),
                                /*min_security_version=*/2);
    verifier.allow(enclave);
    tee::DhKeyPair client_keys(0xbeefULL);
    const tee::HandshakeResult hs =
        tee::completeHandshake(verifier, hello, client_keys);
    if (!hs.ok) {
        std::cerr << "handshake failed: "
                  << tee::verifyStatusName(hs.status) << "\n";
        return 1;
    }
    std::cout << "client: enclave attested ("
              << tee::verifyStatusName(hs.status)
              << "), session keys derived\n";

    // Server derives the same keys from its side of the exchange.
    const tee::SessionKeys server_session = tee::deriveSessionKeys(
        server_keys.sharedSecret(client_keys.publicValue()));

    tee::SecureChannel client_tx(hs.keys.clientToServer);
    tee::SecureChannel server_rx(server_session.clientToServer);
    tee::SecureChannel server_tx(server_session.serverToClient);
    tee::SecureChannel client_rx(hs.keys.serverToClient);

    // ---- Encrypted prompt -> enclave inference -> encrypted reply -----
    llm::ByteTokenizer tok;
    const std::string prompt = "patient: persistent cough, 2 weeks";
    const auto sealed_prompt = client_tx.seal(
        std::vector<std::uint8_t>(prompt.begin(), prompt.end()));
    std::cout << "client: sent " << sealed_prompt.ciphertext.size()
              << "-byte encrypted prompt\n";

    const auto received = server_rx.open(sealed_prompt);
    if (!received) {
        std::cerr << "server: prompt failed authentication\n";
        return 1;
    }

    llm::ModelConfig tiny;
    tiny.layers = 2;
    tiny.hidden = 64;
    tiny.heads = 4;
    tiny.kvHeads = 4;
    tiny.ffn = 128;
    tiny.vocab = llm::ByteTokenizer::kVocabSize;
    const llm::TinyLlama model(tiny, hw::Dtype::Bf16, 2026);
    const std::string text(received->begin(), received->end());
    const auto reply_tokens =
        model.generateGreedy(tok.encode(text), 32);
    const std::string reply = tok.decode(reply_tokens);

    const auto sealed_reply = server_tx.seal(
        std::vector<std::uint8_t>(reply.begin(), reply.end()));
    const auto client_view = client_rx.open(sealed_reply);
    std::cout << "server: generated " << reply_tokens.size()
              << " tokens inside the enclave\n"
              << "client: reply "
              << (client_view ? "verified and decrypted"
                              : "FAILED verification")
              << " (" << sealed_reply.ciphertext.size() << " bytes)\n";

    // ---- What an attacker on the wire sees ----------------------------
    auto replayed = server_rx.open(sealed_prompt);
    std::cout << "attacker replaying the prompt: "
              << (replayed ? "ACCEPTED (bad!)" : "rejected") << "\n";
    return client_view ? 0 : 1;
}
