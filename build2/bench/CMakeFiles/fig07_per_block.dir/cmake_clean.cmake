file(REMOVE_RECURSE
  "CMakeFiles/fig07_per_block.dir/fig07_per_block.cpp.o"
  "CMakeFiles/fig07_per_block.dir/fig07_per_block.cpp.o.d"
  "fig07_per_block"
  "fig07_per_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_per_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
