file(REMOVE_RECURSE
  "CMakeFiles/test_rag_pipeline.dir/test_rag_pipeline.cc.o"
  "CMakeFiles/test_rag_pipeline.dir/test_rag_pipeline.cc.o.d"
  "test_rag_pipeline"
  "test_rag_pipeline.pdb"
  "test_rag_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rag_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
