#include "fleet/metrics.hh"

#include "util/json.hh"

namespace cllm::fleet {

void
writeFleetMetrics(JsonWriter &json, const FleetMetrics &m)
{
    json.beginObject();
    json.key("submitted").value(
        static_cast<std::int64_t>(m.submitted));
    json.key("completed").value(
        static_cast<std::int64_t>(m.completed));
    json.key("availability").value(m.availability);
    json.key("makespan_s").value(m.makespan);
    json.key("output_tokens").value(
        static_cast<std::int64_t>(m.outputTokens));
    json.key("tokens_per_s").value(m.tokensPerSecond);
    json.key("ttft_p50_s").value(m.ttft.p50);
    json.key("ttft_p99_s").value(m.ttft.p99);
    json.key("tpot_p50_s").value(m.tpot.p50);
    json.key("tpot_p99_s").value(m.tpot.p99);
    json.key("slo_attainment").value(m.sloAttainment);
    json.key("kv_utilization_peak").value(m.kvUtilizationPeak);
    json.key("mean_batch_occupancy").value(m.meanBatchOccupancy);
    json.key("total_cost_usd").value(m.totalCostUsd);
    json.key("cost_per_1k_tokens_usd").value(m.costPer1kTokens);
    json.key("peak_nodes").value(
        static_cast<std::int64_t>(m.peakNodes));
    json.key("mean_live_nodes").value(m.meanLiveNodes);
    json.key("scale_ups").value(
        static_cast<std::int64_t>(m.scaleUps));
    json.key("drains").value(static_cast<std::int64_t>(m.drains));
    json.key("backlogged").value(
        static_cast<std::int64_t>(m.backlogged));
    json.key("retries").value(static_cast<std::int64_t>(m.retries));
    json.key("shed").value(static_cast<std::int64_t>(m.shed));
    json.key("timed_out").value(
        static_cast<std::int64_t>(m.timedOut));
    json.key("failed").value(static_cast<std::int64_t>(m.failed));
    json.key("restarts").value(
        static_cast<std::int64_t>(m.restarts));
    json.key("fault_downtime_s").value(m.faultDowntime);

    json.key("node_timeline");
    json.beginArray();
    for (const auto &[t, count] : m.nodeTimeline) {
        json.beginObject();
        json.key("t_s").value(t);
        json.key("live_nodes").value(count);
        json.endObject();
    }
    json.endArray();

    json.key("nodes");
    json.beginArray();
    for (const NodeSummary &n : m.nodes) {
        json.beginObject();
        json.key("id").value(n.id);
        json.key("name").value(n.name);
        json.key("template").value(
            static_cast<std::int64_t>(n.templateIndex));
        json.key("provision_start_s").value(n.provisionStart);
        json.key("available_at_s").value(n.availableAt);
        json.key("billed_until_s").value(n.billedUntil);
        json.key("billed_seconds").value(n.billedSeconds);
        json.key("cost_usd").value(n.costUsd);
        json.key("serve");
        serve::writeMetrics(json, n.serve);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace cllm::fleet
