/**
 * @file
 * Fleet-composition cost sweep: the Figs. 12-13 cost crossover
 * re-asked at fleet scale. For a range of offered loads, size a pure
 * CPU-TDX fleet, a pure confidential-GPU fleet, and a mixed fleet
 * (cost-aware router spilling from cheap TDX nodes to cGPU nodes on
 * projected TTFT breach), replay the same seeded trace through each,
 * and report $/1k generated tokens plus p99 TTFT and SLO attainment.
 *
 * Expected shape: at low request rates the CPU-TEE fleet is cheapest
 * (a mostly idle cGPU instance burns ~24x the $/hr of a TDX slice);
 * as load grows the GPU's throughput advantage amortises its price
 * and the crossover appears, and tightening the TTFT target moves the
 * crossover toward lower rates because queueing on CPU prefill is
 * what breaches first.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cost/pricing.hh"
#include "fleet/presets.hh"
#include "fleet/simulator.hh"
#include "obs/chrome_export.hh"
#include "obs/trace.hh"
#include "util/table.hh"

using namespace cllm;

namespace {

void
usage(std::ostream &os)
{
    os << "usage: fleet_capacity [--kv reserved|paged] "
          "[--prefix <mode>] [--chunk <mode>] [--spec] "
          "[--trace [path]] [--metrics-out path]\n\n"
          "  --kv mode           KV discipline on every node: "
          "'reserved' (default,\n"
          "                      whole-request block reservation) or "
          "'paged'\n"
          "                      (headroom admission with recompute "
          "preemption)\n"
       << bench::prefixUsage() << bench::chunkUsage()
       << bench::specUsage() << bench::obsUsage();
}

/** Sustainable request rate of one node at full batch, from its own
 *  step model: decode tokens/s divided by the mean output length. */
double
nodeReqRate(const fleet::NodeTemplate &t,
            const serve::WorkloadConfig &load)
{
    const auto step = t.makeStep();
    const double step_s = step->decodeStep(
        t.server.maxBatch, load.meanInLen + load.meanOutLen / 2);
    const double tok_s =
        static_cast<double>(t.server.maxBatch) / step_s;
    return tok_s / static_cast<double>(load.meanOutLen);
}

struct SizedRun
{
    fleet::FleetMetrics m;
    std::size_t nodes = 0;
    bool eligible = false;
};

/**
 * Smallest fleet of the given composition meeting the SLO bar, found
 * by growing the CPU node count (a pure GPU fleet grows GPU nodes).
 * Returns the last attempt when even the cap cannot meet the bar.
 */
SizedRun
sizeFleet(fleet::FleetConfig cfg,
          const std::vector<fleet::NodeTemplate> &templates,
          std::size_t grow_template,
          const std::vector<serve::Request> &trace)
{
    constexpr std::size_t kMaxNodes = 32;
    SizedRun best;
    for (;;) {
        fleet::FleetSimulator sim(cfg, templates);
        best.m = sim.run(trace);
        best.nodes = cfg.initialNodes.size();
        best.eligible = best.m.sloAttainment >= 0.9;
        if (best.eligible || best.nodes >= kMaxNodes)
            return best;
        cfg.initialNodes.push_back(grow_template);
    }
}

void
sweep(double ttft_slo, const std::vector<double> &rates,
      serve::KvMode kv_mode, const bench::ChunkOptions &copt,
      const bench::SpecOptions &sopt)
{
    fleet::NodeTemplate cpu = fleet::cpuTdxNode();
    fleet::NodeTemplate gpu = fleet::cgpuH100Node();
    if (kv_mode == serve::KvMode::Paged) {
        const llm::ModelConfig model = llm::llama2_7b();
        bench::applyPagedKv(cpu.server, model);
        bench::applyPagedKv(gpu.server, model);
    }
    bench::applyChunkedPrefill(cpu.server, copt);
    bench::applyChunkedPrefill(gpu.server, copt);
    if (sopt.enabled) {
        bench::applySpecDecode(cpu.server, sopt);
        bench::applySpecDecode(gpu.server, sopt);
    }

    serve::WorkloadConfig base = bench::serveSeedWorkload();
    const double cpu_rate = nodeReqRate(cpu, base);
    const double gpu_rate = nodeReqRate(gpu, base);
    std::cout << "per-node decode capacity: " << cpu.name << " "
              << fmt(cpu_rate, 2) << " req/s ($"
              << fmt(cpu.pricePerHour, 3) << "/hr), " << gpu.name
              << " " << fmt(gpu_rate, 2) << " req/s ($"
              << fmt(gpu.pricePerHour, 2) << "/hr)\n";
    std::cout << "TTFT SLO " << fmt(ttft_slo, 2) << " s; each fleet "
                 "grown until attainment >= 90% (cap 32 nodes)\n\n";

    Table t({"rate [req/s]", "fleet", "nodes", "$/1k tok",
             "TTFT p99 [s]", "SLO", "cheapest@SLO"});
    // Every rate point replays its own seeded trace through freshly
    // constructed simulators, so the grid fans out across cores; row
    // order (and content — the traces are seed-deterministic) matches
    // the serial sweep exactly.
    const auto per_rate = bench::runGrid<std::vector<SizedRun>>(
        rates.size(), [&](std::size_t gi) {
            serve::WorkloadConfig load = base;
            load.arrivalRate = rates[gi];
            load.numRequests = static_cast<std::size_t>(std::min(
                1200.0, std::max(200.0, 240.0 * rates[gi])));
            const auto trace = serve::generateWorkload(load);

            std::vector<SizedRun> results;
            {
                fleet::FleetConfig cfg;
                cfg.ttftSlo = ttft_slo;
                cfg.policy = fleet::RouterPolicy::LeastOutstanding;
                cfg.initialNodes = {0};
                results.push_back(sizeFleet(cfg, {cpu}, 0, trace));
            }
            {
                fleet::FleetConfig cfg;
                cfg.ttftSlo = ttft_slo;
                cfg.policy = fleet::RouterPolicy::LeastOutstanding;
                cfg.initialNodes = {0};
                results.push_back(sizeFleet(cfg, {gpu}, 0, trace));
            }
            {
                // One cGPU spill target plus as many cheap TDX nodes
                // as the SLO demands, under the cost-aware router.
                fleet::FleetConfig cfg;
                cfg.ttftSlo = ttft_slo;
                cfg.policy = fleet::RouterPolicy::CostAware;
                cfg.initialNodes = {0, 1};
                results.push_back(
                    sizeFleet(cfg, {cpu, gpu}, 0, trace));
            }
            return results;
        });

    const std::vector<std::string> names = {
        "cpu-tdx only", "cgpu only", "mixed cost-aware"};
    for (std::size_t r = 0; r < rates.size(); ++r) {
        const auto &results = per_rate[r];
        int best = -1;
        for (std::size_t i = 0; i < results.size(); ++i)
            if (results[i].eligible &&
                (best < 0 ||
                 results[i].m.costPer1kTokens <
                     results[static_cast<std::size_t>(best)]
                         .m.costPer1kTokens))
                best = static_cast<int>(i);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const fleet::FleetMetrics &m = results[i].m;
            t.addRow({fmt(rates[r], 2), names[i],
                      fmtInt(results[i].nodes),
                      fmt(m.costPer1kTokens, 4), fmt(m.ttft.p99, 2),
                      fmtPct(100.0 * m.sloAttainment),
                      static_cast<int>(i) == best ? "<== cheapest"
                                                  : ""});
        }
    }
    t.print(std::cout);
    std::cout << "\n";
}

/**
 * Prefix-caching comparison on a homogeneous 4-node TDX fleet: the
 * same shared-system-prompt trace replayed with caching off, caching
 * on under plain load balancing (hits only when repeats happen to
 * land together), and caching on under the prefix-affinity router
 * (repeat prefixes stick to the node holding their KV). Reports hit
 * rates and the TTFT / $/1k-token deltas the routing choice buys.
 */
void
prefixComparison(const bench::PrefixOptions &popt)
{
    std::cout << "--- prefix caching: shared-system-prompt mix on a "
                 "4-node TDX fleet ---\n";
    std::cout << "sharing scope " << serve::prefixModeName(popt.mode)
              << "; " << popt.mix.tenants << " tenants, "
              << popt.mix.prefixLen << "-token shared prefixes, "
              << fmtPct(100.0 * popt.mix.sharedFraction)
              << " of requests shared\n\n";

    const llm::ModelConfig model = llm::llama2_7b();
    fleet::NodeTemplate cpu = fleet::cpuTdxNode();
    bench::applyPagedKv(cpu.server, model);

    serve::WorkloadConfig load = bench::serveSeedWorkload();
    load.arrivalRate = 1.2;
    load.numRequests = 400;
    std::vector<serve::Request> trace = serve::generateWorkload(load);
    serve::applySharedPrefixMix(trace, popt.mix);

    // Per-node cache budget sized below the distinct-prompt working
    // set (tenants x prompts/tenant prefixes). Scatter routing makes
    // every node try to hold every prompt inside that budget, while
    // affinity routing needs only its resident share per node — the
    // difference between the two cached-token columns is what the
    // routing policy is worth.
    const std::uint64_t bt = cpu.server.kvBlockTokens;
    const std::uint64_t prompt_blocks =
        (popt.mix.prefixLen + bt - 1) / bt;
    const std::uint64_t budget = 3 * prompt_blocks;

    struct Variant
    {
        const char *name;
        bool prefixOn;
        fleet::RouterPolicy policy;
    };
    const Variant variants[] = {
        {"off / least-outstanding", false,
         fleet::RouterPolicy::LeastOutstanding},
        {"on / least-outstanding", true,
         fleet::RouterPolicy::LeastOutstanding},
        {"on / prefix-affinity", true,
         fleet::RouterPolicy::PrefixAffinity},
    };

    Table t({"variant", "hit rate", "prefill tok", "TTFT p50 [s]",
             "TTFT p99 [s]", "$/1k tok", "vs off"});
    double off_per_1k = 0.0;
    for (const Variant &v : variants) {
        fleet::NodeTemplate node = cpu;
        if (v.prefixOn) {
            node.server.prefixMode = popt.mode;
            node.server.prefix.maxBlocks = budget;
        }
        fleet::FleetConfig cfg;
        cfg.ttftSlo = 2.0;
        cfg.policy = v.policy;
        cfg.initialNodes = {0, 0, 0, 0};
        fleet::FleetSimulator sim(cfg, {node});
        const fleet::FleetMetrics m = sim.run(trace);
        if (!v.prefixOn)
            off_per_1k = m.costPer1kTokens;
        const std::size_t matches = m.prefixHits + m.prefixMisses;
        t.addRow(
            {v.name,
             matches ? fmtPct(100.0 * m.prefixHits /
                              static_cast<double>(matches))
                     : std::string("-"),
             fmtInt(m.prefillTokensComputed), fmt(m.ttft.p50, 3),
             fmt(m.ttft.p99, 3), fmt(m.costPer1kTokens, 4),
             v.prefixOn ? fmt(off_per_1k - m.costPer1kTokens, 6)
                        : std::string("-")});
    }
    t.print(std::cout);
    std::cout << "\n";
}

/**
 * Chunked-prefill comparison on a homogeneous 4-node TDX fleet: the
 * same trace replayed monolithic and chunked, so the fleet-level ITL
 * and max-step-prefill aggregation (and the router's chunk-aware TTFT
 * projection) is exercised end to end.
 */
void
chunkedComparison(const bench::ChunkOptions &copt)
{
    std::cout << "--- chunked prefill: "
              << serve::chunkModeName(copt.mode) << "-priority "
              << copt.chunkTokens
              << "-token slices on a 4-node TDX fleet ---\n\n";

    const llm::ModelConfig model = llm::llama2_7b();
    fleet::NodeTemplate cpu = fleet::cpuTdxNode();
    bench::applyPagedKv(cpu.server, model);

    serve::WorkloadConfig load = bench::serveSeedWorkload();
    load.arrivalRate = 1.2;
    load.numRequests = 400;
    const std::vector<serve::Request> trace =
        serve::generateWorkload(load);

    Table t({"schedule", "max step pf", "TTFT p99 [s]",
             "ITL p99 [ms]", "tok/s", "$/1k tok"});
    for (bool chunked : {false, true}) {
        fleet::NodeTemplate node = cpu;
        if (chunked)
            bench::applyChunkedPrefill(node.server, copt);
        fleet::FleetConfig cfg;
        cfg.ttftSlo = 2.0;
        cfg.policy = fleet::RouterPolicy::LeastOutstanding;
        cfg.initialNodes = {0, 0, 0, 0};
        fleet::FleetSimulator sim(cfg, {node});
        const fleet::FleetMetrics m = sim.run(trace);
        t.addRow({chunked ? "chunked" : "monolithic",
                  fmtInt(m.maxStepPrefillTokens), fmt(m.ttft.p99, 3),
                  chunked ? fmt(1e3 * m.itl.p99, 1)
                          : std::string("-"),
                  fmt(m.tokensPerSecond),
                  fmt(m.costPer1kTokens, 4)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

/**
 * Speculative-decoding comparison on a homogeneous 4-node TDX fleet:
 * the same trace replayed with speculation off and on, so the
 * fleet-level accepted-length rollups (and the router's spec-aware
 * decode estimate) are exercised end to end.
 */
void
specComparison(const bench::SpecOptions &sopt)
{
    std::cout << "--- speculative decoding: k=" << sopt.draftTokens
              << " drafts (cost ratio " << fmt(sopt.draftCostRatio, 2)
              << ", acceptance " << fmt(sopt.acceptProb, 2)
              << ") on a 4-node TDX fleet ---\n\n";

    const llm::ModelConfig model = llm::llama2_7b();
    fleet::NodeTemplate cpu = fleet::cpuTdxNode();
    bench::applyPagedKv(cpu.server, model);

    serve::WorkloadConfig load = bench::serveSeedWorkload();
    load.arrivalRate = 1.2;
    load.numRequests = 400;
    const std::vector<serve::Request> trace =
        serve::generateWorkload(load);

    Table t({"variant", "verify steps", "mean acc len",
             "ITL p99 [ms]", "tok/s", "$/1k tok"});
    for (bool spec : {false, true}) {
        fleet::NodeTemplate node = cpu;
        if (spec)
            bench::applySpecDecode(node.server, sopt);
        fleet::FleetConfig cfg;
        cfg.ttftSlo = 2.0;
        cfg.policy = fleet::RouterPolicy::LeastOutstanding;
        cfg.initialNodes = {0, 0, 0, 0};
        fleet::FleetSimulator sim(cfg, {node});
        const fleet::FleetMetrics m = sim.run(trace);
        // Per-sequence verify cycles end in a bonus token or a
        // rejection resample, so their sum counts cycles.
        const std::uint64_t cycles = m.specBonus + m.specRejected;
        const double mean_acc =
            cycles ? static_cast<double>(m.specAccepted) /
                         static_cast<double>(cycles)
                   : 0.0;
        t.addRow({spec ? "speculative" : "autoregressive",
                  spec ? fmtInt(m.specVerifySteps) : std::string("-"),
                  spec ? fmt(mean_acc, 2) : std::string("-"),
                  fmt(1e3 * m.itl.p99, 1), fmt(m.tokensPerSecond),
                  fmt(m.costPer1kTokens, 4)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

/**
 * Trace one representative scenario: the mixed cost-aware fleet at
 * 1 req/s under the paper SLO. The sweep itself fans out across
 * cores, so the traced run is a separate serial replay — same seeded
 * trace, same configs, deterministic sim-time events.
 */
void
traceRepresentativeRun(const bench::ObsOptions &opt)
{
    serve::WorkloadConfig load = bench::serveSeedWorkload();
    load.arrivalRate = 1.0;
    load.numRequests = 240;

    fleet::FleetConfig cfg;
    cfg.ttftSlo = 2.0;
    cfg.policy = fleet::RouterPolicy::CostAware;
    cfg.initialNodes = {0, 1};

    obs::Tracer tracer(obs::TraceMode::Sim);
    cfg.tracer = &tracer;
    fleet::FleetSimulator sim(
        cfg, {fleet::cpuTdxNode(), fleet::cgpuH100Node()});
    sim.run(serve::generateWorkload(load));

    const std::string out = obs::traceOutputPath(
        opt.tracePath, "fleet_capacity.trace.json");
    obs::writeChromeTraceFile(out, tracer, &obs::Registry::global());
    std::cout << "wrote trace: " << out << " (mixed cost-aware fleet "
              << "at 1 req/s, " << tracer.simEvents().size()
              << " events)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsOptions opt;
    bench::PrefixOptions popt;
    bench::ChunkOptions copt;
    bench::SpecOptions sopt;
    serve::KvMode kv_mode = serve::KvMode::Reserved;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (bench::parseKvArg(kv_mode, argc, argv, i))
            continue;
        if (bench::parsePrefixArg(popt, argc, argv, i))
            continue;
        if (bench::parseChunkArg(copt, argc, argv, i))
            continue;
        if (bench::parseSpecArg(sopt, argc, argv, i))
            continue;
        if (bench::parseObsArg(opt, argc, argv, i))
            continue;
        std::cerr << "fleet_capacity: unknown argument '" << argv[i]
                  << "'\n";
        usage(std::cerr);
        return 2;
    }

    bench::banner(
        "Fleet capacity", "cost crossover as fleet composition",
        "CPU TEEs cheapest at low utilisation; GPU-CC amortises at "
        "high rates (Figs. 12-13 at fleet scale)");
    if (kv_mode == serve::KvMode::Paged)
        std::cout << "KV discipline: paged (headroom admission, "
                     "recompute preemption)\n\n";
    if (copt.mode != serve::ChunkMode::Off)
        std::cout << "chunked prefill: "
                  << serve::chunkModeName(copt.mode) << " priority, "
                  << copt.chunkTokens << "-token slices\n\n";
    if (sopt.enabled)
        std::cout << "speculative decoding: k=" << sopt.draftTokens
                  << " drafts, cost ratio "
                  << fmt(sopt.draftCostRatio, 2) << ", acceptance "
                  << fmt(sopt.acceptProb, 2) << "\n\n";

    const std::vector<double> rates = {0.25, 0.5, 1.0, 2.0,
                                       4.0, 8.0};
    std::cout << "--- paper SLO: TTFT 2 s ---\n";
    sweep(2.0, rates, kv_mode, copt, sopt);
    std::cout << "--- tightened SLO: TTFT 0.5 s (crossover moves "
                 "toward the GPU) ---\n";
    sweep(0.5, rates, kv_mode, copt, sopt);

    if (popt.mode != serve::PrefixMode::Off)
        prefixComparison(popt);

    if (copt.mode != serve::ChunkMode::Off)
        chunkedComparison(copt);

    if (sopt.enabled)
        specComparison(sopt);

    if (opt.trace)
        traceRepresentativeRun(opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}
