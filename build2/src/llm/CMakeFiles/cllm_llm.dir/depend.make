# Empty dependencies file for cllm_llm.
# This may be replaced when dependencies are built.
