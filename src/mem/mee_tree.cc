#include "mem/mee_tree.hh"

#include <cstring>

#include "util/logging.hh"

namespace cllm::mem {

namespace {

/** Number of nodes at the level above `count` slots with `arity`. */
std::size_t
levelAbove(std::size_t count, unsigned arity)
{
    return (count + arity - 1) / arity;
}

} // namespace

MeeTree::MeeTree(PhysMem &mem, const crypto::Digest256 &master_key,
                 unsigned arity)
    : mem_(mem), arity_(arity),
      cipher_(crypto::toAesKey(crypto::deriveKey(master_key, "mee-data"))),
      macKey_()
{
    if (arity_ < 2)
        cllm_fatal("MeeTree arity must be >= 2, got ", arity_);

    const crypto::Digest256 mk = crypto::deriveKey(master_key, "mee-mac");
    macKey_.assign(mk.begin(), mk.end());

    // Build counter levels until one node covers everything.
    std::size_t slots = mem_.lines();
    counters_.emplace_back(slots, 0); // level 0: per-line versions
    while (slots > arity_) {
        slots = levelAbove(slots, arity_);
        counters_.emplace_back(slots, 0);
    }
    depth_ = static_cast<unsigned>(counters_.size());

    lineMacs_.resize(mem_.lines());
    nodeMacs_.resize(depth_);
    for (unsigned lvl = 0; lvl < depth_; ++lvl)
        nodeMacs_[lvl].resize(levelAbove(counters_[lvl].size(), arity_));

    // Encrypt the initial all-zero contents so that fresh reads
    // decrypt to zero, and MAC everything so first reads verify.
    for (std::size_t i = 0; i < mem_.lines(); ++i) {
        CacheLine zero{};
        cipher_.transform(static_cast<std::uint64_t>(i), 0, zero.data(),
                          zero.size());
        mem_.writeLine(i, zero);
        lineMacs_[i] = lineMac(i, 0, zero);
    }
    for (unsigned lvl = 0; lvl < depth_; ++lvl)
        for (std::size_t n = 0; n < nodeMacs_[lvl].size(); ++n)
            nodeMacs_[lvl][n] = nodeMac(lvl, n);
}

std::vector<std::size_t>
MeeTree::branchIndices(std::size_t line_idx) const
{
    std::vector<std::size_t> out;
    std::size_t idx = line_idx;
    for (unsigned lvl = 0; lvl < depth_; ++lvl) {
        out.push_back(idx);
        idx /= arity_;
    }
    return out;
}

crypto::Digest256
MeeTree::lineMac(std::size_t line_idx, std::uint64_t version,
                 const CacheLine &cipher) const
{
    std::uint8_t buf[16 + kLineBytes];
    for (int i = 0; i < 8; ++i) {
        buf[i] = static_cast<std::uint8_t>(line_idx >> (56 - 8 * i));
        buf[8 + i] = static_cast<std::uint8_t>(version >> (56 - 8 * i));
    }
    std::memcpy(buf + 16, cipher.data(), kLineBytes);
    return crypto::hmacSha256(macKey_, buf, sizeof(buf));
}

crypto::Digest256
MeeTree::nodeMac(unsigned level, std::size_t node_idx) const
{
    // MAC over this node's counters plus the counter that covers this
    // node at the level above (the root counter for the top level).
    std::vector<std::uint8_t> buf;
    buf.reserve((arity_ + 3) * 8);
    auto push_u64 = [&buf](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (56 - 8 * i)));
    };
    push_u64(level);
    push_u64(node_idx);
    const auto &lvl_counters = counters_[level];
    for (unsigned k = 0; k < arity_; ++k) {
        const std::size_t slot = node_idx * arity_ + k;
        push_u64(slot < lvl_counters.size() ? lvl_counters[slot] : 0);
    }
    // The covering counter for node `node_idx` of this level is slot
    // `node_idx` one level up; the top level is covered by the on-chip
    // root counter.
    const std::uint64_t cover = (level + 1 < depth_)
                                    ? counters_[level + 1][node_idx]
                                    : rootCounter_;
    push_u64(cover);
    return crypto::hmacSha256(macKey_, buf.data(), buf.size());
}

void
MeeTree::writeLine(std::size_t line_idx, const CacheLine &plaintext)
{
    if (line_idx >= mem_.lines())
        cllm_panic("MeeTree write out of range: ", line_idx);

    const auto branch = branchIndices(line_idx);

    // Bump the whole counter branch (leaf version and covering nodes).
    for (unsigned lvl = 0; lvl < depth_; ++lvl)
        ++counters_[lvl][branch[lvl]];
    ++rootCounter_;

    const std::uint64_t version = counters_[0][line_idx];
    CacheLine cipher_line = plaintext;
    cipher_.transform(static_cast<std::uint64_t>(line_idx), version,
                      cipher_line.data(), cipher_line.size());
    mem_.writeLine(line_idx, cipher_line);
    lineMacs_[line_idx] = lineMac(line_idx, version, cipher_line);

    // Refresh node MACs along the branch (each level's covering node).
    for (unsigned lvl = 0; lvl < depth_; ++lvl) {
        const std::size_t node = branch[lvl] / arity_;
        nodeMacs_[lvl][node] = nodeMac(lvl, node);
        ++stats_.nodesTouched;
    }
    ++stats_.writes;
}

MeeReadResult
MeeTree::readLine(std::size_t line_idx) const
{
    MeeReadResult result;
    if (line_idx >= mem_.lines())
        cllm_panic("MeeTree read out of range: ", line_idx);

    ++stats_.reads;
    const auto branch = branchIndices(line_idx);

    // Verify the counter branch bottom-up.
    for (unsigned lvl = 0; lvl < depth_; ++lvl) {
        const std::size_t node = branch[lvl] / arity_;
        ++stats_.nodesTouched;
        ++stats_.macChecks;
        if (!crypto::digestEqual(nodeMacs_[lvl][node],
                                 nodeMac(lvl, node))) {
            ++stats_.integrityFailures;
            return result;
        }
    }

    const std::uint64_t version = counters_[0][line_idx];
    const CacheLine cipher_line = mem_.readLine(line_idx);
    ++stats_.macChecks;
    if (!crypto::digestEqual(lineMacs_[line_idx],
                             lineMac(line_idx, version, cipher_line))) {
        ++stats_.integrityFailures;
        return result;
    }

    result.data = cipher_line;
    cipher_.transform(static_cast<std::uint64_t>(line_idx), version,
                      result.data.data(), result.data.size());
    result.ok = true;
    return result;
}

void
MeeTree::tamperCounter(unsigned level, std::size_t idx,
                       std::uint64_t value)
{
    if (level >= depth_ || idx >= counters_[level].size())
        cllm_panic("tamperCounter out of range");
    counters_[level][idx] = value;
}

double
MeeCostModel::perLineNs(unsigned tree_depth) const
{
    const double walk = (1.0 - walkHitRate) * perNodeWalkNs *
                        static_cast<double>(tree_depth);
    return perLineCryptoNs + walk;
}

double
MeeCostModel::bandwidthFactor(double raw_bytes_per_s,
                              unsigned tree_depth) const
{
    if (raw_bytes_per_s <= 0.0)
        cllm_panic("bandwidthFactor: non-positive bandwidth");
    const double line_time_ns = 1e9 * kLineBytes / raw_bytes_per_s;
    return line_time_ns / (line_time_ns + perLineNs(tree_depth));
}

} // namespace cllm::mem
