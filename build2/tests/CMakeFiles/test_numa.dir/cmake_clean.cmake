file(REMOVE_RECURSE
  "CMakeFiles/test_numa.dir/test_numa.cc.o"
  "CMakeFiles/test_numa.dir/test_numa.cc.o.d"
  "test_numa"
  "test_numa.pdb"
  "test_numa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
