# Empty compiler generated dependencies file for ablate_tdx.
# This may be replaced when dependencies are built.
