/**
 * @file
 * Tests for the paged KV-cache block pool: allocation, growth,
 * copy-on-write forking, exhaustion, and accounting.
 */

#include <gtest/gtest.h>

#include "serve/kv_pool.hh"

using namespace cllm::serve;

namespace {

KvPoolConfig
smallPool(std::uint64_t blocks = 8, unsigned block_tokens = 4)
{
    KvPoolConfig cfg;
    cfg.totalBlocks = blocks;
    cfg.blockTokens = block_tokens;
    return cfg;
}

} // namespace

TEST(KvPool, AdmitsAndAccounts)
{
    KvBlockPool pool(smallPool());
    ASSERT_TRUE(pool.addSequence(1, 6)); // needs ceil(6/4) = 2 blocks
    EXPECT_EQ(pool.blocksOf(1), 2u);
    EXPECT_EQ(pool.tokens(1), 6u);
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_NEAR(pool.utilization(), 0.25, 1e-9);
}

TEST(KvPool, AppendAllocatesOnBoundary)
{
    KvBlockPool pool(smallPool());
    ASSERT_TRUE(pool.addSequence(1, 4)); // exactly one full block
    EXPECT_EQ(pool.blocksOf(1), 1u);
    ASSERT_TRUE(pool.appendToken(1)); // crosses into block 2
    EXPECT_EQ(pool.blocksOf(1), 2u);
    ASSERT_TRUE(pool.appendToken(1)); // within block 2
    EXPECT_EQ(pool.blocksOf(1), 2u);
    EXPECT_EQ(pool.tokens(1), 6u);
}

TEST(KvPool, RejectsWhenFull)
{
    KvBlockPool pool(smallPool(2, 4));
    ASSERT_TRUE(pool.addSequence(1, 8)); // both blocks
    EXPECT_FALSE(pool.addSequence(2, 1));
    EXPECT_FALSE(pool.appendToken(1)); // would need a third block
    // The failed ops must not leak or corrupt.
    EXPECT_EQ(pool.freeBlocks(), 0u);
    pool.release(1);
    EXPECT_EQ(pool.freeBlocks(), 2u);
    EXPECT_TRUE(pool.addSequence(2, 1));
}

TEST(KvPool, ReleaseReturnsBlocks)
{
    KvBlockPool pool(smallPool());
    pool.addSequence(1, 8);
    pool.addSequence(2, 8);
    EXPECT_EQ(pool.freeBlocks(), 4u);
    pool.release(1);
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_EQ(pool.tokens(1), 0u);
}

TEST(KvPool, ForkSharesFullBlocks)
{
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 8); // two full blocks
    ASSERT_TRUE(pool.fork(1, 2));
    // No partial block: everything shared, no extra allocation.
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_EQ(pool.tokens(2), 8u);
}

TEST(KvPool, ForkCopiesPartialBlock)
{
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 6); // 1 full + 1 partial
    ASSERT_TRUE(pool.fork(1, 2));
    // Partial block duplicated: 3 blocks in use.
    EXPECT_EQ(pool.freeBlocks(), 5u);
}

TEST(KvPool, CopyOnWriteOnSharedBoundary)
{
    // Fork on a full-block boundary shares everything; the next
    // append lands in a fresh block so beams never clobber each
    // other.
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 4);
    ASSERT_TRUE(pool.fork(1, 2));
    EXPECT_EQ(pool.freeBlocks(), 7u); // one shared block
    ASSERT_TRUE(pool.appendToken(1)); // new private block for 1
    ASSERT_TRUE(pool.appendToken(2)); // new private block for 2
    EXPECT_EQ(pool.freeBlocks(), 5u);
    EXPECT_EQ(pool.blocksOf(1), 2u);
    EXPECT_EQ(pool.blocksOf(2), 2u);
}

TEST(KvPool, ReleaseOfForkKeepsParentIntact)
{
    KvBlockPool pool(smallPool(8, 4));
    pool.addSequence(1, 8);
    pool.fork(1, 2);
    pool.release(2);
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_EQ(pool.tokens(1), 8u);
    // Parent can still grow.
    EXPECT_TRUE(pool.appendToken(1));
}

TEST(KvPool, CanAdmitChecksWithoutAllocating)
{
    KvBlockPool pool(smallPool(4, 4));
    EXPECT_TRUE(pool.canAdmit(16));
    EXPECT_FALSE(pool.canAdmit(17));
    EXPECT_EQ(pool.freeBlocks(), 4u); // unchanged
}

TEST(KvPool, ManySequencesChurn)
{
    KvBlockPool pool(smallPool(64, 8));
    for (int round = 0; round < 20; ++round) {
        for (SeqId s = 0; s < 8; ++s)
            ASSERT_TRUE(pool.addSequence(round * 100 + s, 17));
        for (SeqId s = 0; s < 8; ++s) {
            for (int t = 0; t < 5; ++t)
                ASSERT_TRUE(pool.appendToken(round * 100 + s));
        }
        for (SeqId s = 0; s < 8; ++s)
            pool.release(round * 100 + s);
    }
    EXPECT_EQ(pool.freeBlocks(), 64u); // no leaks
    EXPECT_EQ(pool.utilization(), 0.0);
}

TEST(KvPoolDeath, ApiMisuseFatal)
{
    KvBlockPool pool(smallPool());
    pool.addSequence(1, 4);
    EXPECT_DEATH(pool.addSequence(1, 4), "duplicate");
    EXPECT_DEATH(pool.appendToken(99), "unknown");
    EXPECT_DEATH(pool.release(99), "unknown");
    EXPECT_DEATH(pool.fork(99, 100), "unknown");
    EXPECT_DEATH(pool.fork(1, 1), "existing");
}

TEST(KvPoolDeath, DegenerateConfigFatal)
{
    KvPoolConfig cfg;
    cfg.totalBlocks = 0;
    EXPECT_DEATH(KvBlockPool{cfg}, "degenerate");
}
