# Empty compiler generated dependencies file for test_rag_pipeline.
# This may be replaced when dependencies are built.
