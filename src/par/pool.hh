/**
 * @file
 * Deterministic parallel execution layer.
 *
 * A fixed-size thread pool drives `parallelFor` / `parallelReduce`
 * over index ranges. The determinism contract: chunk boundaries and
 * the reduction combine order depend ONLY on the range and the grain
 * — never on the thread count or on scheduling — so any computation
 * whose chunks write disjoint state (or reduce through the provided
 * combiner) produces bit-identical results for `CLLM_THREADS=1` and
 * `CLLM_THREADS=N`. That contract is what lets the golden regression
 * files stay pinned while the hot paths (GEMM, attention, AES-CTR,
 * dense retrieval, bench sweeps) fan out across cores.
 *
 * Thread-count resolution: the `CLLM_THREADS` environment variable if
 * set and positive, else `std::thread::hardware_concurrency()`. Tests
 * and benches may override at runtime with `setThreadCount()`.
 *
 * Nested calls from inside a worker task run inline and sequentially
 * (the same code path as a single-threaded pool), so parallel bench
 * sweeps can fan out over configurations whose inner kernels are
 * themselves parallelized without deadlock or oversubscription.
 */

#ifndef CLLM_PAR_POOL_HH
#define CLLM_PAR_POOL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace cllm::par {

/** Current pool width (number of threads chunks may run on). */
unsigned threadCount();

/**
 * Reconfigure the pool width. 0 restores the default (CLLM_THREADS
 * env, else hardware concurrency). Joins and respawns the workers;
 * must not race an in-flight parallelFor. Results are unaffected —
 * the width changes wall-clock only, never chunking or combine order.
 */
void setThreadCount(unsigned n);

/** Number of chunks a range of `count` items splits into at `grain`.
 *  Depends only on (count, grain): ceil(count / grain). */
std::size_t chunkCount(std::size_t count, std::size_t grain);

/**
 * Run `body(chunk, b, e)` for every chunk of [begin, end) at the
 * given grain. Chunk `i` always covers
 * [begin + i*grain, min(begin + (i+1)*grain, end)), whatever the
 * thread count. Chunks may run concurrently and in any order; bodies
 * must write disjoint state. The first-thrown exception (lowest chunk
 * index wins when several chunks throw) is rethrown on the caller
 * after all chunks finish. `grain` must be positive.
 */
void forEachChunk(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &body);

/**
 * Parallel loop over [begin, end): `body(b, e)` is invoked once per
 * chunk with the chunk's sub-range. See forEachChunk for the
 * determinism and exception contract.
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>
                     &body);

/**
 * Deterministic parallel reduction over [begin, end).
 *
 * `map(b, e)` produces one partial value per chunk (chunks may run
 * concurrently); the partials are then combined SEQUENTIALLY in
 * ascending chunk order: `acc = combine(acc, partial[0]); acc =
 * combine(acc, partial[1]); ...` starting from `identity`. Because
 * both the chunk boundaries and the fold order are fixed by (range,
 * grain), the result is bit-identical across thread counts even for
 * non-associative combines (floating-point sums, top-k merges).
 */
template <typename T, typename Map, typename Combine>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
               T identity, Map &&map, Combine &&combine)
{
    const std::size_t n = end > begin ? end - begin : 0;
    const std::size_t chunks = chunkCount(n, grain);
    if (chunks == 0)
        return identity;
    std::vector<T> partial(chunks);
    forEachChunk(begin, end, grain,
                 [&](std::size_t chunk, std::size_t b, std::size_t e) {
                     partial[chunk] = map(b, e);
                 });
    T acc = std::move(identity);
    for (std::size_t i = 0; i < chunks; ++i)
        acc = combine(std::move(acc), std::move(partial[i]));
    return acc;
}

} // namespace cllm::par

#endif // CLLM_PAR_POOL_HH
