# Empty compiler generated dependencies file for fig07_per_block.
# This may be replaced when dependencies are built.
