file(REMOVE_RECURSE
  "CMakeFiles/test_config_json.dir/test_config_json.cc.o"
  "CMakeFiles/test_config_json.dir/test_config_json.cc.o.d"
  "test_config_json"
  "test_config_json.pdb"
  "test_config_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
